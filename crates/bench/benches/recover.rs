//! Recovery-plane cost: what self-healing actually costs when a fault
//! fires mid-run.
//!
//! Measurements landing in `BENCH_recover.json`:
//!
//! 1. **Recovery latency** — the supervisor's detect → rollback →
//!    resume bookkeeping per incident (store scan, checkpoint
//!    validation, fault stripping), separate from the replay itself.
//! 2. **Steps lost vs checkpoint cadence** — the replay cost of one
//!    mid-sweep crash when checkpointing every sweep vs every other
//!    sweep vs never (fresh-start restart). The cadence bounds the
//!    loss; the numbers show the actual trade.
//! 3. **Supervised vs oracle wall time** — the end-to-end price of a
//!    crash + recovery against the uninterrupted run.
//! 4. **Inline bit-identity guard** — every supervised run must
//!    reproduce the fault-free oracle bit for bit before any number
//!    is published.
//!
//! Run: `cargo bench -p disttgl-bench --bench recover`

use disttgl_cluster::{ClusterSpec, FaultKind, FaultPlan};
use disttgl_core::{
    train_distributed, train_supervised, ModelConfig, ParallelConfig, RetryPolicy, RunResult,
    SupervisedRun, TrainConfig,
};
use disttgl_data::generators;
use std::io::Write;
use std::time::Instant;

fn tiny_model() -> ModelConfig {
    let mut mc = ModelConfig::compact(0);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

fn base_cfg(epochs: usize) -> TrainConfig {
    let mut cfg = TrainConfig::new(ParallelConfig::new(1, 1, 2));
    cfg.local_batch = 64;
    cfg.epochs = epochs;
    cfg.eval_negs = 9;
    cfg.eval_every_epoch = true;
    cfg.seed = 23;
    cfg.base_lr = 2e-2;
    cfg
}

fn assert_oracle_equal(run: &RunResult, oracle: &RunResult) {
    assert!(!run.aborted);
    assert_eq!(run.loss_history, oracle.loss_history, "loss divergence");
    assert_eq!(run.test_metric, oracle.test_metric, "metric divergence");
    assert_eq!(
        run.memory_checksums, oracle.memory_checksums,
        "memory divergence"
    );
}

/// One supervised crash run at the given checkpoint cadence (`None`
/// disables checkpointing → fresh-start recovery). Returns the run,
/// its wall time, and the bench dir used.
fn supervised_crash(
    d: &disttgl_data::Dataset,
    mc: &ModelConfig,
    cfg: &TrainConfig,
    cadence: Option<usize>,
    crash_step: usize,
    tag: &str,
) -> (SupervisedRun, f64) {
    let dir = std::env::temp_dir().join(format!(
        "disttgl_bench_recover_{tag}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = cfg
        .clone()
        .with_faults(FaultPlan::new(vec![FaultKind::LaneCrash {
            rank: 1,
            step: crash_step,
        }]));
    if let Some(n) = cadence {
        cfg = cfg.checkpoint_every(n, dir.to_str().unwrap());
    }
    let t0 = Instant::now();
    let run = train_supervised(d, mc, &cfg, ClusterSpec::new(1, 2), &RetryPolicy::default())
        .expect("supervisor completes within budget");
    let wall = t0.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&dir).ok();
    (run, wall)
}

fn main() {
    let d = generators::mooc(0.0015, 23);
    let mc = tiny_model();
    println!("dataset: {:?}", d.stats());

    // Oracle: 4 sweeps, no faults.
    let cfg = base_cfg(8);
    let t0 = Instant::now();
    let oracle = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    let oracle_wall = t0.elapsed().as_secs_f64();
    assert!(!oracle.aborted);
    let sps = oracle.loss_history.len() / 4;
    let crash_step = 3 * sps + sps / 2; // mid fourth sweep
    println!(
        "oracle: {} steps ({sps}/sweep), wall {oracle_wall:.2}s; crash at step {crash_step}",
        oracle.loss_history.len()
    );

    // Steps lost vs cadence: every sweep, every other sweep, never.
    let mut cadence_records = Vec::new();
    for (cadence, tag) in [(Some(1), "c1"), (Some(2), "c2"), (None, "c0")] {
        let (run, wall) = supervised_crash(&d, &mc, &cfg, cadence, crash_step, tag);
        assert_oracle_equal(&run.result, &oracle);
        assert_eq!(run.incidents.len(), 1);
        let inc = &run.incidents[0];
        println!(
            "cadence {:>5}: rolled back to {:?}, lost {} steps, rollback {:.3} ms, wall {wall:.2}s",
            cadence.map_or("never".into(), |n| n.to_string()),
            inc.resumed_from_unit,
            inc.steps_lost,
            inc.rollback_secs * 1e3,
        );
        cadence_records.push(format!(
            "{{\"checkpoint_every\":{},\"resumed_from_unit\":{},\"steps_lost\":{},\
             \"rollback_ms\":{:.3},\"supervised_wall_s\":{:.3},\"restarts\":{},\
             \"bit_identical\":true}}",
            cadence.map_or("null".into(), |n| n.to_string()),
            inc.resumed_from_unit
                .map_or("null".into(), |u| u.to_string()),
            inc.steps_lost,
            inc.rollback_secs * 1e3,
            wall,
            run.incidents.len(),
        ));
    }

    let host_cores = disttgl_bench::host_cores();
    let record = format!(
        "{{\"bench\":\"recover\",\"host_cores\":{host_cores},\"dataset\":\"{}\",\"events\":{},\
         \"total_steps\":{},\"steps_per_sweep\":{sps},\"crash_step\":{crash_step},\
         \"oracle_wall_s\":{oracle_wall:.3},\"runs\":[{}]}}\n",
        d.name,
        d.graph.num_events(),
        oracle.loss_history.len(),
        cadence_records.join(","),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recover.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(record.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
