//! The distributed memory daemon's speculative-gather overlap
//! (`TrainConfig::speculative_gather`): how stale is a unique-row
//! speculative read, and what does hiding the serialized gather buy?
//!
//! Four measurements land in `BENCH_daemon.json`:
//!
//! 1. **Unique-row stale fraction** (the re-measure ROADMAP asked for
//!    before committing to the protocol): over a full training sweep
//!    at the Table-2-analog shape, batch `t + 1`'s unique-node gather
//!    is taken *before* batch `t`'s write lands — the maximal j ≥ 2
//!    staleness window — and the delta counts the rows the write
//!    actually invalidated. PR 2's dedup shrank the repair *volume*
//!    ~38×; this measures the *fraction* of the (now small) unique-row
//!    set that still needs repair.
//! 2. **Protocol stale fraction** from a real `train_distributed` run
//!    (j = 2, speculation on): `delta_rows / spec_rows` out of the
//!    daemon's own counters.
//! 3. **Modeled overlap speedup**: on the Acquire turn's critical path
//!    the serialized full gather is replaced by the delta + patch (the
//!    speculative gather runs inside the daemon's idle gaps). Host
//!    stage times + the harness's simulated-GPU compute factor give
//!    the modeled step-time ratio, with the usual sensitivity sweep.
//! 4. **Host wall-clock** `train_distributed` speculation on vs off —
//!    honest about this container: with 1 CPU trainers, daemon, and
//!    prefetch workers serialize, so expect ~1.0×; the overlap needs
//!    real parallel hardware and is exactly what (3) models.
//!
//! The bench re-checks bit-identity inline (loss histories and final
//! memory digests on vs off); the full proof lives in
//! `tests/daemon_overlap_equivalence.rs`.
//!
//! Run: `cargo bench -p disttgl-bench --bench daemon_overlap`

use disttgl_cluster::ClusterSpec;
use disttgl_core::{
    train_distributed, BatchPreparer, ModelConfig, ParallelConfig, TgnModel, TrainConfig,
};
use disttgl_data::{generators, Dataset, NegativeStore};
use disttgl_graph::{batching, TCsr};
use disttgl_mem::MemoryState;
use disttgl_tensor::seeded_rng;
use std::io::Write;
use std::time::Instant;

/// Simulated-GPU compute speed relative to one host thread (same
/// calibration as the pipeline bench).
const GPU_FACTOR: f64 = 25.0;

struct SweepResult {
    unique_rows: u64,
    stale_rows: u64,
    /// Mean per-batch stage times (seconds).
    gather_full: f64,
    spec_gather: f64,
    /// Delta-ship + client-side apply (the inspectable general path).
    delta_patch: f64,
    /// Fused in-place repair (`repair_since`, the trainer hot path).
    repair: f64,
    split: f64,
    compute: f64,
}

/// Replays one training sweep with the speculative window pinned to
/// its maximum (the gather of batch `t + 1` taken before batch `t`'s
/// write), measuring staleness and per-stage times, and verifying the
/// patched block equals the serialized read bit for bit.
fn measure_sweep(d: &Dataset, mc: &ModelConfig, batch: usize, train_end: usize) -> SweepResult {
    let csr = TCsr::build(&d.graph);
    let prep = BatchPreparer::new(d, &csr, mc);
    let store = NegativeStore::generate(&d.graph, train_end, 2, 1, 3);
    let mut rng = seeded_rng(97);
    let mut model = TgnModel::new(mc.clone(), &mut rng);
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());

    let mut r = SweepResult {
        unique_rows: 0,
        stale_rows: 0,
        gather_full: 0.0,
        spec_gather: 0.0,
        delta_patch: 0.0,
        repair: 0.0,
        split: 0.0,
        compute: 0.0,
    };
    let batches = batching::chronological_batches(0..train_end, batch);
    let n_spec = batches.len().saturating_sub(1).max(1) as f64;
    let mut pending_write = None;
    for range in &batches {
        let negs = store.slice(0, range.clone());
        let sb = prep.prepare_static(range.clone(), &[negs], 1);

        let full = match pending_write.take() {
            None => mem.read(sb.nodes()), // cold start: serialized
            Some(w) => {
                // Speculative gather *before* the previous batch's
                // write lands (the j ≥ 2 window at its widest).
                let t0 = Instant::now();
                let tagged = mem.read_versioned(sb.nodes());
                r.spec_gather += t0.elapsed().as_secs_f64();
                mem.write(&w);
                // General path (what the delta would ship): timed on a
                // copy so the hot path below starts from the same
                // tagged block.
                let mut shipped = tagged.readout.clone();
                let t0 = Instant::now();
                let delta = mem.delta_since(sb.nodes(), &tagged.versions);
                delta.apply(&mut shipped);
                r.delta_patch += t0.elapsed().as_secs_f64();
                // Critical-path work at the Acquire turn (the trainer
                // hot path): fused in-place repair.
                let mut patched = tagged.readout;
                let t0 = Instant::now();
                let n_rep = mem.repair_since(sb.nodes(), &tagged.versions, &mut patched);
                r.repair += t0.elapsed().as_secs_f64();
                assert_eq!(n_rep, delta.len());
                r.unique_rows += sb.nodes().len() as u64;
                r.stale_rows += delta.len() as u64;
                // What the serialized turn would have paid instead —
                // and the bit-identity check against it.
                let t0 = Instant::now();
                let serialized = mem.read(sb.nodes());
                r.gather_full += t0.elapsed().as_secs_f64();
                assert_eq!(patched.mem, serialized.mem, "repair != serialized read");
                assert_eq!(shipped.mem, serialized.mem, "delta != serialized read");
                assert_eq!(patched.mail_ts, serialized.mail_ts);
                patched
            }
        };
        let t0 = Instant::now();
        let b = prep.complete(sb, full);
        r.split += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        model.params.zero_grads();
        let out = model.train_step(&b.pos, b.negs.first(), None);
        r.compute += t0.elapsed().as_secs_f64();
        pending_write = Some(out.write);
    }
    let n = batches.len() as f64;
    r.gather_full /= n_spec;
    r.spec_gather /= n_spec;
    r.delta_patch /= n_spec;
    r.repair /= n_spec;
    r.split /= n;
    r.compute /= n;
    r
}

/// `(serialized step, speculative step)` under the simulated-GPU
/// model: the speculative gather leaves the critical path; the fused
/// in-place repair replaces the full gather in the Acquire turn.
fn modeled_steps(r: &SweepResult, factor: f64) -> (f64, f64) {
    let compute = r.compute / factor;
    let seq = r.gather_full + r.split + compute;
    let spec = r.repair + r.split + compute;
    (seq, spec)
}

/// Paper-regime projection: this harness's gather is a small in-core
/// memcpy, but the paper's memory ops are the dominant serialized
/// stage (Fig 2(b): up to ~half the multi-GPU step). With the repair
/// costing `ratio`× the gather, hiding a gather that is `share` of
/// the serialized step buys `1 / (1 - share·(1 - ratio))`.
fn paper_regime_speedup(share: f64, ratio: f64) -> f64 {
    1.0 / (1.0 - share * (1.0 - ratio))
}

fn main() {
    // Table-2-analog workload, matching the pipeline/dedup benches.
    let d = generators::wikipedia(0.05, 4242);
    let mut mc = ModelConfig::compact(d.edge_features.cols());
    mc.static_memory = false;
    assert!(mc.dedup_readout, "unique-row layout is the default");
    let batch = 600usize;
    let (train_end, _) = d.graph.chronological_split(0.70, 0.15);

    println!(
        "daemon overlap bench: {} ({} events), batch {batch}, k={}",
        d.name,
        d.graph.num_events(),
        mc.n_neighbors
    );

    // 1 + 3. Stale fraction and stage times over a sweep. Staleness
    // counts are deterministic; the sub-millisecond stage times are
    // noisy on a shared 1-CPU host, so take the best of three sweeps
    // per stage (min is the standard noise-robust estimator).
    let mut sweep = measure_sweep(&d, &mc, batch, train_end);
    for _ in 0..2 {
        let rerun = measure_sweep(&d, &mc, batch, train_end);
        sweep.gather_full = sweep.gather_full.min(rerun.gather_full);
        sweep.spec_gather = sweep.spec_gather.min(rerun.spec_gather);
        sweep.delta_patch = sweep.delta_patch.min(rerun.delta_patch);
        sweep.repair = sweep.repair.min(rerun.repair);
        sweep.split = sweep.split.min(rerun.split);
        sweep.compute = sweep.compute.min(rerun.compute);
        assert_eq!(sweep.stale_rows, rerun.stale_rows, "staleness determinism");
    }
    let stale_fraction = sweep.stale_rows as f64 / sweep.unique_rows.max(1) as f64;
    println!(
        "unique-row staleness: {}/{} rows rewritten by the previous batch ({:.1}%)",
        sweep.stale_rows,
        sweep.unique_rows,
        stale_fraction * 100.0
    );
    println!(
        "per-batch stages: full gather {:.3}ms | spec gather {:.3}ms (hidden) | delta-ship {:.3}ms | fused repair {:.3}ms | split {:.3}ms | compute {:.2}ms (host)",
        sweep.gather_full * 1e3,
        sweep.spec_gather * 1e3,
        sweep.delta_patch * 1e3,
        sweep.repair * 1e3,
        sweep.split * 1e3,
        sweep.compute * 1e3
    );
    let mem_stage_speedup = sweep.gather_full / sweep.repair.max(1e-12);
    let repair_ratio = sweep.repair / sweep.gather_full.max(1e-12);
    println!(
        "memory-stage critical path: {mem_stage_speedup:.2}x (full gather -> fused repair; delta-ship path {:.2}x)",
        sweep.gather_full / sweep.delta_patch.max(1e-12)
    );

    let (seq_step, spec_step) = modeled_steps(&sweep, GPU_FACTOR);
    let modeled_speedup = seq_step / spec_step.max(1e-12);
    println!(
        "modeled (gpu {GPU_FACTOR:.0}x) acquire step {:.3}ms -> {:.3}ms | speedup {modeled_speedup:.3}x (this harness's gather is {:.1}% of the step)",
        seq_step * 1e3,
        spec_step * 1e3,
        sweep.gather_full / seq_step * 100.0
    );
    let mut sensitivity = String::new();
    for factor in [10.0, 25.0, 50.0, 100.0] {
        let (s, p) = modeled_steps(&sweep, factor);
        if !sensitivity.is_empty() {
            sensitivity.push(',');
        }
        sensitivity.push_str(&format!(
            "{{\"gpu_factor\":{factor:.0},\"modeled_speedup\":{:.4}}}",
            s / p
        ));
        println!("  sensitivity gpu {factor:>4.0}x -> {:.3}x", s / p);
    }
    // Paper regime: memory ops are the dominant serialized stage there
    // (Fig 2(b)); project the overlap with the measured repair ratio.
    let mut paper_regime = String::new();
    for share in [0.1, 0.25, 0.5] {
        let sp = paper_regime_speedup(share, repair_ratio);
        if !paper_regime.is_empty() {
            paper_regime.push(',');
        }
        paper_regime.push_str(&format!(
            "{{\"mem_share\":{share:.2},\"projected_speedup\":{sp:.4}}}"
        ));
        println!(
            "  paper regime: gather {:>2.0}% of step -> {sp:.2}x with measured repair ratio {repair_ratio:.2}",
            share * 100.0
        );
    }

    // 2 + 4. Real distributed runs, speculation on vs off (j = 2 so
    // the continue passes open the window).
    let mut cfg = TrainConfig::new(ParallelConfig::new(1, 2, 1));
    cfg.local_batch = 300;
    cfg.epochs = 4;
    cfg.eval_every_epoch = false;
    cfg.seed = 7;
    let host = |cfg: &TrainConfig| {
        let _ = train_distributed(&d, &mc, cfg, ClusterSpec::new(1, 2)); // warm-up
        let mut best: Option<disttgl_core::RunResult> = None;
        for _ in 0..2 {
            let r = train_distributed(&d, &mc, cfg, ClusterSpec::new(1, 2));
            if best
                .as_ref()
                .map(|b| r.throughput_events_per_sec > b.throughput_events_per_sec)
                .unwrap_or(true)
            {
                best = Some(r);
            }
        }
        best.expect("at least one run")
    };
    let on = host(&cfg);
    cfg.speculative_gather = false;
    let off = host(&cfg);
    let host_speedup = on.throughput_events_per_sec / off.throughput_events_per_sec.max(1e-9);
    let protocol_stale = on.daemon_delta_rows as f64 / on.daemon_spec_rows.max(1) as f64;
    let bit_identical = on.loss_history == off.loss_history
        && on.test_metric == off.test_metric
        && on.memory_checksums == off.memory_checksums;
    println!(
        "protocol (j=2): {} spec rows, {} delta rows -> stale fraction {:.1}%",
        on.daemon_spec_rows,
        on.daemon_delta_rows,
        protocol_stale * 100.0
    );
    println!(
        "host  speculative {:.0} events/s | serialized {:.0} events/s | speedup {host_speedup:.2}x (1-cpu container serializes the overlap)",
        on.throughput_events_per_sec, off.throughput_events_per_sec
    );
    println!("bit-identical on/off: {bit_identical}");

    let host_cores = disttgl_bench::host_cores();
    let record = format!(
        "{{\"bench\":\"daemon_overlap\",\"host_cores\":{host_cores},\"dataset\":\"{}\",\"events\":{},\
         \"local_batch\":{},\"n_neighbors\":{},\
         \"unique_rows\":{},\"stale_rows\":{},\"stale_fraction_unique\":{:.4},\
         \"protocol_spec_rows\":{},\"protocol_delta_rows\":{},\
         \"protocol_stale_fraction\":{:.4},\
         \"gather_full_ms\":{:.3},\"spec_gather_ms\":{:.3},\"delta_ship_ms\":{:.3},\
         \"fused_repair_ms\":{:.3},\"split_ms\":{:.3},\"compute_host_ms\":{:.3},\
         \"mem_stage_speedup\":{:.4},\"repair_ratio\":{:.4},\
         \"gpu_factor\":{:.1},\"modeled_speedup\":{:.4},\
         \"host_speculative_events_per_sec\":{:.1},\"host_serialized_events_per_sec\":{:.1},\
         \"host_speedup\":{:.4},\"bit_identical\":{},\
         \"sensitivity\":[{}],\"paper_regime\":[{}]}}\n",
        d.name,
        d.graph.num_events(),
        batch,
        mc.n_neighbors,
        sweep.unique_rows,
        sweep.stale_rows,
        stale_fraction,
        on.daemon_spec_rows,
        on.daemon_delta_rows,
        protocol_stale,
        sweep.gather_full * 1e3,
        sweep.spec_gather * 1e3,
        sweep.delta_patch * 1e3,
        sweep.repair * 1e3,
        sweep.split * 1e3,
        sweep.compute * 1e3,
        mem_stage_speedup,
        repair_ratio,
        GPU_FACTOR,
        modeled_speedup,
        on.throughput_events_per_sec,
        off.throughput_events_per_sec,
        host_speedup,
        bit_identical,
        sensitivity,
        paper_regime
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_daemon.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(record.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
