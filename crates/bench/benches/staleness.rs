//! Bounded-staleness training (`TrainConfig::staleness_bound`): what
//! does skipping the Acquire-slot delta repair inside a staleness
//! budget buy, and what does it cost in accuracy?
//!
//! Four measurements land in `BENCH_staleness.json`:
//!
//! 1. **Inline k=0 bit-identity guard**: the bounded machinery at
//!    k = 0 must reproduce the exact oracle bit for bit (losses and
//!    final memory digests) — re-checked here so the bench artifact
//!    can never report a speedup against a broken baseline. The full
//!    proof lives in `tests/staleness_equivalence.rs`.
//! 2. **Micro repair sweep**: `repair_lagged` vs `repair_since` on the
//!    Table-2-analog sweep with the speculation window pinned maximal
//!    — per-batch Acquire-slot repair time and rows repaired vs
//!    admitted as the bound grows. This is the host-measurable win:
//!    bounded staleness *deletes* repair work instead of overlapping
//!    it, so it shows up even on 1 CPU.
//! 3. **Host throughput vs k** from real `train_distributed` runs
//!    (j = 2 opens the speculation window), with the daemon's own
//!    skipped/paid/lag counters per k.
//! 4. **Accuracy deltas across seeds**: |ΔMRR| (link prediction) and
//!    |ΔF1| (edge classification) between exact and bounded runs at
//!    small k, per seed and averaged — the measured cost of the trade.
//!
//! Run: `cargo bench -p disttgl-bench --bench staleness`

use disttgl_cluster::ClusterSpec;
use disttgl_core::{
    train_distributed, BatchPreparer, ModelConfig, ParallelConfig, TgnModel, TrainConfig,
};
use disttgl_data::{generators, Dataset, NegativeStore};
use disttgl_graph::{batching, TCsr};
use disttgl_mem::MemoryState;
use disttgl_tensor::seeded_rng;
use std::io::Write;
use std::time::Instant;

/// Staleness bounds swept by the micro and host measurements.
const K_SWEEP: [u64; 5] = [0, 1, 2, 4, 8];

struct MicroPoint {
    bound: u64,
    unique_rows: u64,
    repaired_rows: u64,
    admitted_rows: u64,
    /// Mean per-batch fused repair time (seconds).
    repair_secs: f64,
}

/// Replays one training sweep with the speculative window pinned
/// maximal (batch `t + 1`'s gather taken before batch `t`'s write
/// lands) and measures the Acquire-slot repair under `bound`. At
/// bound 0 the patched block is asserted bit-identical to the
/// serialized read.
fn measure_micro(
    d: &Dataset,
    mc: &ModelConfig,
    batch: usize,
    train_end: usize,
    bound: u64,
) -> MicroPoint {
    let csr = TCsr::build(&d.graph);
    let prep = BatchPreparer::new(d, &csr, mc);
    let store = NegativeStore::generate(&d.graph, train_end, 2, 1, 3);
    let mut rng = seeded_rng(97);
    let mut model = TgnModel::new(mc.clone(), &mut rng);
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());

    let mut p = MicroPoint {
        bound,
        unique_rows: 0,
        repaired_rows: 0,
        admitted_rows: 0,
        repair_secs: 0.0,
    };
    let batches = batching::chronological_batches(0..train_end, batch);
    let n_spec = batches.len().saturating_sub(1).max(1) as f64;
    let mut pending_write = None;
    for range in &batches {
        let negs = store.slice(0, range.clone());
        let sb = prep.prepare_static(range.clone(), &[negs], 1);

        let full = match pending_write.take() {
            None => mem.read(sb.nodes()),
            Some(w) => {
                let tagged = mem.read_versioned(sb.nodes());
                mem.write(&w);
                let mut patched = tagged.readout;
                let t0 = Instant::now();
                let outcome = mem.repair_lagged(sb.nodes(), &tagged.versions, &mut patched, bound);
                p.repair_secs += t0.elapsed().as_secs_f64();
                p.unique_rows += sb.nodes().len() as u64;
                p.repaired_rows += outcome.repaired as u64;
                p.admitted_rows += outcome.admitted_stale as u64;
                if bound == 0 {
                    let serialized = mem.read(sb.nodes());
                    assert_eq!(
                        patched.mem, serialized.mem,
                        "bounded k=0 != serialized read"
                    );
                    assert_eq!(patched.mail_ts, serialized.mail_ts);
                }
                patched
            }
        };
        let b = prep.complete(sb, full);
        model.params.zero_grads();
        let out = model.train_step(&b.pos, b.negs.first(), None);
        pending_write = Some(out.write);
    }
    p.repair_secs /= n_spec;
    p
}

struct HostPoint {
    bound: Option<u64>,
    events_per_sec: f64,
    repairs_paid: u64,
    repairs_skipped: u64,
    mean_lag: f64,
    max_lag: u64,
    loss_history: Vec<f32>,
    memory_checksums: Vec<u64>,
}

fn host_run(d: &Dataset, mc: &ModelConfig, cfg: &TrainConfig, runs: usize) -> HostPoint {
    let spec = ClusterSpec::new(1, cfg.parallel.world());
    let mut best: Option<disttgl_core::RunResult> = None;
    for _ in 0..runs {
        let r = train_distributed(d, mc, cfg, spec);
        assert!(!r.aborted);
        if best
            .as_ref()
            .map(|b| r.throughput_events_per_sec > b.throughput_events_per_sec)
            .unwrap_or(true)
        {
            best = Some(r);
        }
    }
    let r = best.expect("at least one run");
    HostPoint {
        bound: cfg.staleness_bound,
        events_per_sec: r.throughput_events_per_sec,
        repairs_paid: r.daemon_delta_rows,
        repairs_skipped: r.daemon_stale_rows_admitted,
        mean_lag: r.daemon_stale_lag_sum as f64 / r.daemon_stale_rows_admitted.max(1) as f64,
        max_lag: r.daemon_stale_lag_max,
        loss_history: r.loss_history,
        memory_checksums: r.memory_checksums,
    }
}

fn main() {
    // Table-2-analog workload, matching the daemon-overlap bench.
    let d = generators::wikipedia(0.05, 4242);
    let mut mc = ModelConfig::compact(d.edge_features.cols());
    mc.static_memory = false;
    let batch = 600usize;
    let (train_end, _) = d.graph.chronological_split(0.70, 0.15);

    println!(
        "staleness bench: {} ({} events), batch {batch}, k sweep {:?}",
        d.name,
        d.graph.num_events(),
        K_SWEEP
    );

    // 2. Micro repair sweep (best of 3 per bound; staleness counts are
    // deterministic at the pinned window, times are noisy on 1 CPU).
    let mut micro: Vec<MicroPoint> = Vec::new();
    for &bound in &K_SWEEP {
        let mut point = measure_micro(&d, &mc, batch, train_end, bound);
        for _ in 0..2 {
            let rerun = measure_micro(&d, &mc, batch, train_end, bound);
            assert_eq!(point.repaired_rows, rerun.repaired_rows, "determinism");
            point.repair_secs = point.repair_secs.min(rerun.repair_secs);
        }
        println!(
            "micro k={bound}: {}/{} rows repaired, {} admitted stale, fused repair {:.3}ms/batch",
            point.repaired_rows,
            point.unique_rows,
            point.admitted_rows,
            point.repair_secs * 1e3
        );
        micro.push(point);
    }
    let repair_cost_ratio = micro.last().unwrap().repair_secs / micro[0].repair_secs.max(1e-12);
    println!(
        "acquire-slot repair cost at k={} is {:.2}x the k=0 cost ({} of {} repairs skipped)",
        K_SWEEP[K_SWEEP.len() - 1],
        repair_cost_ratio,
        micro.last().unwrap().admitted_rows,
        micro.last().unwrap().admitted_rows + micro.last().unwrap().repaired_rows
    );

    // 3. Host throughput vs k (j = 2 opens the speculation window).
    let mut cfg = TrainConfig::new(ParallelConfig::new(1, 2, 1));
    cfg.local_batch = 300;
    cfg.epochs = 4;
    cfg.eval_every_epoch = false;
    cfg.seed = 7;
    let _ = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2)); // warm-up
    let exact = host_run(&d, &mc, &cfg, 2);
    let mut host: Vec<HostPoint> = Vec::new();
    for &k in &K_SWEEP {
        let run = host_run(&d, &mc, &cfg.clone().staleness_bound(k), 2);
        println!(
            "host k={k}: {:.0} events/s ({:+.1}% vs exact {:.0}) | skipped {} / paid {} | lag mean {:.2} max {}",
            run.events_per_sec,
            100.0 * (run.events_per_sec / exact.events_per_sec - 1.0),
            exact.events_per_sec,
            run.repairs_skipped,
            run.repairs_paid,
            run.mean_lag,
            run.max_lag
        );
        host.push(run);
    }

    // 1. Inline k=0 bit-identity guard against the exact oracle.
    let k0 = &host[0];
    let bit_identical =
        k0.loss_history == exact.loss_history && k0.memory_checksums == exact.memory_checksums;
    assert!(
        bit_identical,
        "k=0 bounded run diverged from the exact oracle"
    );
    println!("bit-identical k=0 vs exact: {bit_identical}");

    // 4. Accuracy deltas across seeds, both tasks, at small k.
    let acc_k = 4u64;
    let seeds = [101u64, 202, 303];
    let small = generators::wikipedia(0.02, 4242);
    let mut small_mc = ModelConfig::compact(small.edge_features.cols());
    small_mc.static_memory = false;
    let gdelt = generators::gdelt(2.0e-5, 4242);
    let gdelt_mc = {
        let mut m = ModelConfig::compact(gdelt.edge_features.cols());
        m.static_memory = false;
        m.with_classes(gdelt.num_classes())
    };
    let mut mrr_entries = String::new();
    let mut f1_entries = String::new();
    let mut mrr_sum = 0.0f64;
    let mut f1_sum = 0.0f64;
    for &seed in &seeds {
        let mut acc_cfg = TrainConfig::new(ParallelConfig::new(1, 2, 1));
        acc_cfg.local_batch = 200;
        acc_cfg.epochs = 4;
        acc_cfg.eval_every_epoch = false;
        acc_cfg.eval_negs = 49;
        acc_cfg.seed = seed;
        let stale_cfg = acc_cfg.clone().staleness_bound(acc_k);

        let ex = train_distributed(&small, &small_mc, &acc_cfg, ClusterSpec::new(1, 2));
        let st = train_distributed(&small, &small_mc, &stale_cfg, ClusterSpec::new(1, 2));
        let d_mrr = (st.test_metric - ex.test_metric).abs();
        mrr_sum += d_mrr;
        if !mrr_entries.is_empty() {
            mrr_entries.push(',');
        }
        mrr_entries.push_str(&format!(
            "{{\"seed\":{seed},\"exact_mrr\":{:.4},\"stale_mrr\":{:.4},\"abs_delta\":{:.4}}}",
            ex.test_metric, st.test_metric, d_mrr
        ));

        let ex = train_distributed(&gdelt, &gdelt_mc, &acc_cfg, ClusterSpec::new(1, 2));
        let st = train_distributed(&gdelt, &gdelt_mc, &stale_cfg, ClusterSpec::new(1, 2));
        let d_f1 = (st.test_metric - ex.test_metric).abs();
        f1_sum += d_f1;
        if !f1_entries.is_empty() {
            f1_entries.push(',');
        }
        f1_entries.push_str(&format!(
            "{{\"seed\":{seed},\"exact_f1\":{:.4},\"stale_f1\":{:.4},\"abs_delta\":{:.4}}}",
            ex.test_metric, st.test_metric, d_f1
        ));
        println!("seed {seed}: |dMRR| {d_mrr:.4}, |dF1| {d_f1:.4} at k={acc_k}");
    }
    let mean_dmrr = mrr_sum / seeds.len() as f64;
    let mean_df1 = f1_sum / seeds.len() as f64;
    println!(
        "accuracy at k={acc_k} over {} seeds: mean |dMRR| {mean_dmrr:.4}, mean |dF1| {mean_df1:.4}",
        seeds.len()
    );

    let mut micro_json = String::new();
    for p in &micro {
        if !micro_json.is_empty() {
            micro_json.push(',');
        }
        micro_json.push_str(&format!(
            "{{\"k\":{},\"unique_rows\":{},\"repaired_rows\":{},\"admitted_rows\":{},\"repair_ms\":{:.4}}}",
            p.bound, p.unique_rows, p.repaired_rows, p.admitted_rows, p.repair_secs * 1e3
        ));
    }
    let mut host_json = String::new();
    for p in &host {
        if !host_json.is_empty() {
            host_json.push(',');
        }
        host_json.push_str(&format!(
            "{{\"k\":{},\"events_per_sec\":{:.1},\"repairs_paid\":{},\"repairs_skipped\":{},\"mean_lag\":{:.3},\"max_lag\":{}}}",
            p.bound.unwrap_or(0),
            p.events_per_sec,
            p.repairs_paid,
            p.repairs_skipped,
            p.mean_lag,
            p.max_lag
        ));
    }
    let host_cores = disttgl_bench::host_cores();
    let record = format!(
        "{{\"bench\":\"staleness\",\"host_cores\":{host_cores},\"dataset\":\"{}\",\"events\":{},\
         \"local_batch\":{},\"k_sweep\":[0,1,2,4,8],\
         \"bit_identical_k0\":{},\
         \"exact_events_per_sec\":{:.1},\
         \"repair_cost_ratio_kmax\":{:.4},\
         \"micro\":[{}],\"host\":[{}],\
         \"accuracy_k\":{},\"accuracy_seeds\":{},\
         \"mrr\":[{}],\"f1\":[{}],\
         \"mean_abs_delta_mrr\":{:.4},\"mean_abs_delta_f1\":{:.4}}}\n",
        d.name,
        d.graph.num_events(),
        batch,
        bit_identical,
        exact.events_per_sec,
        repair_cost_ratio,
        micro_json,
        host_json,
        acc_k,
        seeds.len(),
        mrr_entries,
        f1_entries,
        mean_dmrr,
        mean_df1
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_staleness.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(record.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
