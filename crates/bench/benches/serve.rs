//! Serving-plane throughput and latency on the Table-2-analog shape
//! (Wikipedia analog, ingest slab 600 — the paper's local batch).
//!
//! Measurements landing in `BENCH_serve.json`:
//!
//! 1. **Sustained ingest throughput** — events/s streaming the train
//!    split through `ServeSession::ingest` (adjacency append + the
//!    engine's sampling-free folded GRU memory update), and the same
//!    stream through `replay_memory` as the offline reference.
//! 2. **Query throughput + latency** — link-score requests answered
//!    per second at micro-batch sizes 1 / 16 / 64 (one frontier
//!    expansion + one unique-node gather per call), with p50/p95/p99
//!    per-call latency from `core::metrics::LatencyHistogram`.
//! 3. **Inline equivalence guard** — a short serve-vs-evaluate drive
//!    must match bit for bit before any number is published.
//!
//! Run: `cargo bench -p disttgl-bench --bench serve`

use disttgl_core::serve::{QueryRequest, ServeSession};
use disttgl_core::{
    evaluate, replay_memory, LatencyHistogram, LatencySummary, ModelConfig, TgnModel,
};
use disttgl_data::{generators, EvalNegatives};
use disttgl_graph::{batching, TCsr};
use disttgl_mem::MemoryState;
use disttgl_nn::loss;
use std::io::Write;
use std::time::Instant;

const SLAB: usize = 600;

/// One query-throughput sweep at a fixed micro-batch size: `calls`
/// calls of `batch` link-score requests each, drawn round-robin over
/// the ingested events at query times just past the stream head.
fn query_sweep(
    session: &mut ServeSession<'_>,
    events: &[disttgl_graph::Event],
    t_query: f32,
    batch: usize,
    calls: usize,
) -> (f64, LatencySummary) {
    let mut hist = LatencyHistogram::new();
    let mut cursor = 0usize;
    let t0 = Instant::now();
    for _ in 0..calls {
        let reqs: Vec<QueryRequest> = (0..batch)
            .map(|i| {
                let e = &events[(cursor + i * 7) % events.len()];
                QueryRequest::LinkScore {
                    src: e.src,
                    dst: e.dst,
                    t: t_query,
                }
            })
            .collect();
        cursor += batch;
        let t_call = Instant::now();
        let resp = session.query(&reqs).expect("valid bench queries");
        hist.record(t_call.elapsed().as_secs_f64());
        assert_eq!(resp.len(), batch);
    }
    let wall = t0.elapsed().as_secs_f64();
    ((batch * calls) as f64 / wall, hist.summary())
}

fn json_latency(s: &LatencySummary) -> String {
    format!(
        "{{\"count\":{},\"mean_ms\":{:.4},\"p50_ms\":{:.4},\"p95_ms\":{:.4},\"p99_ms\":{:.4},\"p999_ms\":{:.4},\"max_ms\":{:.4}}}",
        s.count,
        s.mean_secs * 1e3,
        s.p50_secs * 1e3,
        s.p95_secs * 1e3,
        s.p99_secs * 1e3,
        s.p999_secs * 1e3,
        s.max_secs * 1e3
    )
}

fn main() {
    let d = generators::wikipedia(0.03, 2024);
    let mc = {
        let mut mc = ModelConfig::compact(d.edge_features.cols());
        mc.static_memory = false;
        mc
    };
    let model = TgnModel::new(mc.clone(), &mut disttgl_tensor::seeded_rng(3));
    let (train_end, _) = d.graph.chronological_split(0.70, 0.15);
    println!(
        "serve bench: {} ({} events, {} train), ingest slab {SLAB}",
        d.name,
        d.graph.num_events(),
        train_end
    );

    // 3. Equivalence guard first: a short serve drive must reproduce
    // `evaluate` bit for bit (scores via MRR equality + memory digest).
    {
        let csr = TCsr::build(&d.graph);
        let guard_start = 1200.min(train_end / 2);
        let guard_end = (guard_start + 600).min(train_end);
        let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
        replay_memory(&model, &mc, &d, &csr, &mut mem, None, 0..guard_start, SLAB);
        let oracle = evaluate(
            &model,
            &mc,
            &d,
            &csr,
            &mut mem,
            None,
            guard_start..guard_end,
            SLAB,
            9,
            5,
        );
        let mut session = ServeSession::new(&model, &d, None);
        for r in batching::chronological_batches(0..guard_start, SLAB) {
            session
                .ingest(&d.graph.events()[r])
                .expect("chronological warmup slab");
        }
        let mut sampler = EvalNegatives::new(&d.graph, 5);
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for r in batching::chronological_batches(guard_start..guard_end, SLAB) {
            let events = &d.graph.events()[r];
            let extra: Vec<QueryRequest> = events
                .iter()
                .flat_map(|e| {
                    sampler
                        .draw_excluding(9, e.dst)
                        .into_iter()
                        .map(|n| QueryRequest::LinkScore {
                            src: e.src,
                            dst: n,
                            t: e.t,
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            let out = session
                .ingest_scored(events, &extra)
                .expect("valid scored slab");
            pos.extend(out.event_scores.iter().map(|s| s.scores()[0]));
            neg.extend(out.extra.iter().map(|s| s.scores()[0]));
        }
        let mrr = loss::mrr(&pos, &neg, 9);
        assert_eq!(mrr, oracle.metric, "serve must match evaluate bit for bit");
        assert_eq!(session.memory_checksum(), mem.checksum());
        println!("equivalence guard: serve MRR {mrr:.4} == evaluate (bit-identical), memory digests equal");
    }

    // 1. Sustained ingest throughput over the train split (best of 2),
    // with the offline replay as the reference walker.
    let mut ingest_eps = 0f64;
    for _ in 0..2 {
        let mut session = ServeSession::new(&model, &d, None);
        let t0 = Instant::now();
        for r in batching::chronological_batches(0..train_end, SLAB) {
            session
                .ingest(&d.graph.events()[r])
                .expect("chronological warmup slab");
        }
        ingest_eps = ingest_eps.max(train_end as f64 / t0.elapsed().as_secs_f64());
    }
    let mut replay_eps = 0f64;
    {
        let csr = TCsr::build(&d.graph);
        for _ in 0..2 {
            let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
            let t0 = Instant::now();
            replay_memory(&model, &mc, &d, &csr, &mut mem, None, 0..train_end, SLAB);
            replay_eps = replay_eps.max(train_end as f64 / t0.elapsed().as_secs_f64());
        }
    }
    println!(
        "ingest: {ingest_eps:.0} events/s live (offline replay reference {replay_eps:.0} events/s)"
    );

    // 2. Query throughput/latency at three micro-batch sizes against
    // the fully ingested train split.
    let mut session = ServeSession::new(&model, &d, None);
    for r in batching::chronological_batches(0..train_end, SLAB) {
        session
            .ingest(&d.graph.events()[r])
            .expect("chronological warmup slab");
    }
    let events = &d.graph.events()[0..train_end];
    let t_query = d.graph.events()[train_end - 1].t + 1.0;
    let sweeps: Vec<(usize, f64, LatencySummary)> = [(1usize, 400usize), (16, 200), (64, 100)]
        .into_iter()
        .map(|(batch, calls)| {
            let (qps, lat) = query_sweep(&mut session, events, t_query, batch, calls);
            println!(
                "query micro-batch {batch:>2}: {qps:>7.0} req/s | p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
                lat.p50_secs * 1e3,
                lat.p95_secs * 1e3,
                lat.p99_secs * 1e3
            );
            (batch, qps, lat)
        })
        .collect();

    let sweep_json: Vec<String> = sweeps
        .iter()
        .map(|(batch, qps, lat)| {
            format!(
                "{{\"micro_batch\":{batch},\"requests_per_sec\":{qps:.1},\"latency\":{}}}",
                json_latency(lat)
            )
        })
        .collect();
    let record = format!(
        "{{\"bench\":\"serve\",\"host_cores\":{},\"dataset\":\"{}\",\"events\":{},\"train_events\":{},\
         \"ingest_slab\":{SLAB},\
         \"ingest_events_per_sec\":{ingest_eps:.1},\
         \"offline_replay_events_per_sec\":{replay_eps:.1},\
         \"query_sweeps\":[{}],\
         \"serve_equivalence_bit_identical\":true}}\n",
        disttgl_bench::host_cores(),
        d.name,
        d.graph.num_events(),
        train_end,
        sweep_json.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(record.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
