//! Sequential vs pipelined trainer throughput (events/sec), plus the
//! kernel-level speedup of the lean compute stage.
//!
//! Two throughput views, following the harness's Figure-12 convention
//! (`disttgl_bench::modeled`): host wall-clock measures *this host* —
//! on a single-core container the prefetch worker and the trainer
//! serialize by construction, and host-CPU matmul compute is orders
//! slower relative to preparation than the paper's T4s, hiding the
//! overlap. So alongside the honest host measurements the bench
//! derives the **modeled simulated-GPU throughput**: preparation stays
//! at measured host (CPU) speed — it is CPU work in the real system
//! too — while the compute stage runs on a simulated GPU `GPU_FACTOR`×
//! faster than one host thread. Calibration: the paper's per-T4
//! throughput on these workloads is >10⁴ events/s at full model width
//! vs ~10³ here at reduced width, an effective gap well above 100×;
//! `GPU_FACTOR = 25` is a conservative floor (a sensitivity sweep is
//! reported too).
//!
//! The pipelined executor uses **eager-write scheduling**: the batch's
//! `MemoryWrite` is applied right after the forward pass, so the
//! worker's phase-1 sampling *and* the exact phase-2 gather for the
//! next batch overlap this batch's backward pass (the bulk of
//! compute):
//!
//! ```text
//! sequential = t_phase1 + t_gather + t_split + (t_fwd + t_bwd)/F
//! pipelined  = t_fwd/F + max(t_bwd/F, t_phase1 + t_gather) + t_split
//! ```
//!
//! The pipelined executor is bit-identical to the sequential trainer
//! (tests/pipeline_equivalence.rs), so every delta is pure scheduling.
//! Results land in `BENCH_pipeline.json`.
//!
//! Run: `cargo bench -p disttgl-bench --bench pipeline`

use disttgl_core::{
    train_single, train_single_pipelined, BatchPreparer, MemoryAccess, ModelConfig, ParallelConfig,
    TgnModel, TrainConfig,
};
use disttgl_data::{generators, Dataset, NegativeStore};
use disttgl_graph::{batching, TCsr};
use disttgl_mem::MemoryState;
use disttgl_tensor::{seeded_rng, Matrix};
use std::io::Write;
use std::time::Instant;

/// Simulated-GPU compute speed relative to one host thread (see module
/// docs for the calibration argument).
const GPU_FACTOR: f64 = 25.0;

struct HostRun {
    label: &'static str,
    events_per_sec: f64,
    wall_secs: f64,
}

fn measure_host(
    label: &'static str,
    runs: usize,
    d: &Dataset,
    mc: &ModelConfig,
    cfg: &TrainConfig,
    f: fn(&Dataset, &ModelConfig, &TrainConfig) -> disttgl_core::RunResult,
) -> HostRun {
    let _ = f(d, mc, cfg); // warm-up
    let mut best = f64::MIN;
    let mut wall = 0.0;
    for _ in 0..runs {
        let r = f(d, mc, cfg);
        if r.throughput_events_per_sec > best {
            best = r.throughput_events_per_sec;
            wall = r.wall_secs;
        }
    }
    HostRun {
        label,
        events_per_sec: best,
        wall_secs: wall,
    }
}

struct Phases {
    phase1: f64,
    gather: f64,
    split: f64,
    forward: f64,
    backward: f64,
    batch_events: usize,
}

/// Mean per-batch stage times over one training sweep with real memory
/// feedback, exercising the exact executor sequence. The
/// forward/backward boundary is observed through the eager-write sink
/// (the write exists precisely when the forward pass ends).
fn measure_phases(d: &Dataset, mc: &ModelConfig, cfg: &TrainConfig) -> Phases {
    let csr = TCsr::build(&d.graph);
    let (train_end, _) = d.graph.chronological_split(0.70, 0.15);
    let prep = BatchPreparer::new(d, &csr, mc);
    let store = NegativeStore::generate(&d.graph, train_end, cfg.neg_groups, cfg.train_negs, 3);
    let mut rng = seeded_rng(cfg.seed);
    let mut model = TgnModel::new(mc.clone(), &mut rng);
    let mut adam = model.optimizer(cfg.scaled_lr());
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    let batches = batching::chronological_batches(0..train_end, cfg.local_batch);

    let (mut t1, mut tg, mut ts, mut tf, mut tb) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    let mut events = 0usize;
    for range in &batches {
        let negs = store.slice(0, range.clone());
        let t0 = Instant::now();
        let sb = prep.prepare_static(range.clone(), &[negs], cfg.train_negs);
        t1 += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let full = mem.read(sb.nodes());
        tg += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let batch = prep.complete(sb, full);
        ts += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        model.params.zero_grads();
        let mut t_write = t0;
        let _ = model.train_step_eager_write(&batch.pos, batch.negs.first(), None, |w| {
            t_write = Instant::now();
            MemoryAccess::write(&mut mem, w);
        });
        model.params.clip_grad_norm(5.0);
        adam.step(&mut model.params);
        tf += (t_write - t0).as_secs_f64();
        tb += t_write.elapsed().as_secs_f64();
        events += range.len();
    }
    let n = batches.len().max(1) as f64;
    Phases {
        phase1: t1 / n,
        gather: tg / n,
        split: ts / n,
        forward: tf / n,
        backward: tb / n,
        batch_events: events / batches.len().max(1),
    }
}

/// `(sequential step, pipelined step)` under the simulated-GPU model
/// with eager-write scheduling.
fn modeled_steps(p: &Phases, factor: f64) -> (f64, f64) {
    let fwd = p.forward / factor;
    let bwd = p.backward / factor;
    let seq = p.phase1 + p.gather + p.split + fwd + bwd;
    let pipe = fwd + bwd.max(p.phase1 + p.gather) + p.split;
    (seq, pipe)
}

/// Laned vs serial-reduction `x·Wᵀ` on GRU-gate-shaped operands — the
/// lean-compute-stage kernel win that pairs with the executor.
fn kernel_speedup(rows: usize, mail_dim: usize, d_mem: usize) -> f64 {
    let mut rng = seeded_rng(11);
    let x = Matrix::uniform(rows, mail_dim, 1.0, &mut rng);
    let w = Matrix::uniform(d_mem, mail_dim, 1.0, &mut rng);
    let time = |f: &dyn Fn() -> Matrix| {
        let _ = std::hint::black_box(f());
        let mut best = f64::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            let _ = std::hint::black_box(f());
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let serial = time(&|| x.matmul_transpose_b_serial(&w));
    let laned = time(&|| x.matmul_transpose_b(&w));
    serial / laned.max(1e-12)
}

fn main() {
    // Medium synthetic workload: ~8k-event Wikipedia analog (172-dim
    // edge features — the feature-gather-heavy Table 2 shape), batch
    // 600, no per-epoch evaluation (throughput counts training only).
    let d = generators::wikipedia(0.05, 4242);
    let mut mc = ModelConfig::compact(d.edge_features.cols());
    mc.static_memory = false;
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 600;
    cfg.epochs = 3;
    cfg.eval_every_epoch = false;
    cfg.seed = 7;

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "pipeline bench: {} ({} events), {} epochs, batch {}, {host_cpus} host cpu(s)",
        d.name,
        d.graph.num_events(),
        cfg.epochs,
        cfg.local_batch
    );

    // Host wall-clock (truth about *this* machine).
    let runs = 2;
    let seq = measure_host("sequential", runs, &d, &mc, &cfg, train_single);
    let pipe = measure_host("pipelined", runs, &d, &mc, &cfg, train_single_pipelined);
    for m in [&seq, &pipe] {
        println!(
            "host  {:<12} {:>10.0} events/s  (wall {:.2}s)",
            m.label, m.events_per_sec, m.wall_secs
        );
    }
    let host_speedup = pipe.events_per_sec / seq.events_per_sec.max(1e-9);
    println!("host  speedup: {host_speedup:.2}x (serialized on 1 cpu; needs >= 2 to overlap)");

    // Phase split + modeled simulated-GPU throughput.
    let p = measure_phases(&d, &mc, &cfg);
    println!(
        "per-batch stages: phase1 {:.2}ms, gather {:.2}ms, split {:.2}ms, forward {:.2}ms, backward {:.2}ms (host)",
        p.phase1 * 1e3,
        p.gather * 1e3,
        p.split * 1e3,
        p.forward * 1e3,
        p.backward * 1e3
    );
    let (seq_step, pipe_step) = modeled_steps(&p, GPU_FACTOR);
    let modeled_seq = p.batch_events as f64 / seq_step;
    let modeled_pipe = p.batch_events as f64 / pipe_step;
    let speedup = modeled_pipe / modeled_seq.max(1e-9);
    println!(
        "modeled (gpu {GPU_FACTOR:.0}x) sequential {modeled_seq:>9.0} events/s | pipelined {modeled_pipe:>9.0} events/s | speedup {speedup:.2}x (target >= 1.25x)"
    );
    let mut sensitivity = String::new();
    for factor in [10.0, 25.0, 50.0, 100.0] {
        let (s, pp) = modeled_steps(&p, factor);
        if !sensitivity.is_empty() {
            sensitivity.push(',');
        }
        sensitivity.push_str(&format!(
            "{{\"gpu_factor\":{factor:.0},\"modeled_speedup\":{:.4}}}",
            s / pp
        ));
        println!("  sensitivity gpu {factor:>4.0}x -> {:.2}x", s / pp);
    }

    // Kernel-level lean-compute win on GRU-gate shapes.
    let rows = 2 * cfg.local_batch * (1 + mc.n_neighbors);
    let kern = kernel_speedup(rows, mc.mail_dim(), mc.d_mem);
    println!(
        "kernel x·Wᵀ ({rows}×{}·{}ᵀ): laned vs serial {kern:.2}x",
        mc.mail_dim(),
        mc.d_mem
    );

    let host_cores = disttgl_bench::host_cores();
    let record = format!(
        "{{\"bench\":\"pipeline\",\"host_cores\":{host_cores},\"dataset\":\"{}\",\"events\":{},\"epochs\":{},\
         \"local_batch\":{},\"host_cpus\":{},\
         \"host_sequential_events_per_sec\":{:.1},\"host_pipelined_events_per_sec\":{:.1},\
         \"host_speedup\":{:.4},\
         \"phase1_ms\":{:.3},\"gather_ms\":{:.3},\"split_ms\":{:.3},\
         \"forward_host_ms\":{:.3},\"backward_host_ms\":{:.3},\
         \"gpu_factor\":{:.1},\
         \"modeled_sequential_events_per_sec\":{:.1},\"modeled_pipelined_events_per_sec\":{:.1},\
         \"modeled_speedup\":{:.4},\"kernel_speedup\":{:.4},\"sensitivity\":[{}]}}\n",
        d.name,
        d.graph.num_events(),
        cfg.epochs,
        cfg.local_batch,
        host_cpus,
        seq.events_per_sec,
        pipe.events_per_sec,
        host_speedup,
        p.phase1 * 1e3,
        p.gather * 1e3,
        p.split * 1e3,
        p.forward * 1e3,
        p.backward * 1e3,
        GPU_FACTOR,
        modeled_seq,
        modeled_pipe,
        speedup,
        kern,
        sensitivity
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(record.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
