//! 1- vs 2-layer embedding-stack costs on the Table-2-analog shape
//! (Wikipedia analog, local batch 600, hop-0 fanout 10).
//!
//! Measurements landing in `BENCH_layers.json`:
//!
//! 1. **Union-frontier fold factor** — occurrence rows vs unique
//!    gathered rows per batch, at depth 1 and depth 2. The 2-layer
//!    frontier has `1 + k₀ + k₀·k₁` occurrences per root, but one
//!    memory gather per batch still covers all of it (the union
//!    contract of `core::batch`), and recurrence makes the fold factor
//!    *grow* with depth.
//! 2. **Per-layer stage costs** — `TimingBreakdown::embed_layer_secs`
//!    from real training runs: how the embed stack splits between
//!    layer 0 and layer 1.
//! 3. **End-to-end throughput** — `train_single` events/s at 1 vs 2
//!    layers (the price of the deeper model on this harness).
//! 4. **2-layer distributed reproducibility** — two identical `1×1×2`
//!    daemon runs must match bit for bit (losses, metric, per-replica
//!    memory digests), speculation on.
//!
//! Run: `cargo bench -p disttgl-bench --bench layers`

use disttgl_cluster::ClusterSpec;
use disttgl_core::{
    occurrence_rows, train_distributed, train_single, BatchPreparer, MemoryAccess, ModelConfig,
    ParallelConfig, RunResult, TrainConfig,
};
use disttgl_data::{generators, Dataset, NegativeStore};
use disttgl_graph::{batching, TCsr};
use disttgl_mem::MemoryState;
use std::io::Write;

/// Occurrence and unique row totals of a full training sweep at the
/// given stack config (positive parts only — the negatives fold the
/// same way).
fn fold_stats(d: &Dataset, mc: &ModelConfig, batch: usize) -> (usize, usize) {
    let csr = TCsr::build(&d.graph);
    let (train_end, _) = d.graph.chronological_split(0.70, 0.15);
    let prep = BatchPreparer::new(d, &csr, mc);
    let store = NegativeStore::generate(&d.graph, train_end, 2, 1, 3);
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    let model = disttgl_core::TgnModel::new(mc.clone(), &mut disttgl_tensor::seeded_rng(1));
    let (mut occ, mut uniq) = (0usize, 0usize);
    for range in batching::chronological_batches(0..train_end, batch) {
        let negs = store.slice(0, range.clone());
        let b = prep.prepare(range, &[negs], 1, &mut mem);
        occ += occurrence_rows(b.pos.roots.len(), &b.pos.hops);
        uniq += b.pos.uniq.as_ref().expect("dedup on").num_unique();
        // Advance memory realistically so later batches carry mails.
        let step = model.infer_step(&b.pos, None, None);
        MemoryAccess::write(&mut mem, step.write);
    }
    (occ, uniq)
}

fn train_cfg(batch: usize, epochs: usize) -> TrainConfig {
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = batch;
    cfg.epochs = epochs;
    cfg.eval_every_epoch = false;
    cfg.seed = 7;
    cfg
}

/// Best-of-2 `train_single` by throughput.
fn best_run(d: &Dataset, mc: &ModelConfig, cfg: &TrainConfig) -> RunResult {
    let mut best: Option<RunResult> = None;
    for _ in 0..2 {
        let r = train_single(d, mc, cfg);
        if best
            .as_ref()
            .map(|b| r.throughput_events_per_sec > b.throughput_events_per_sec)
            .unwrap_or(true)
        {
            best = Some(r);
        }
    }
    best.expect("at least one run")
}

fn json_secs(v: &[f64]) -> String {
    let parts: Vec<String> = v.iter().map(|s| format!("{:.4}", s * 1e3)).collect();
    format!("[{}]", parts.join(","))
}

fn main() {
    // Table-2-analog workload at a size the 2-hop frontier tolerates
    // on CPU: ~5k events, 172-dim edge features, local batch 600.
    let d = generators::wikipedia(0.03, 2024);
    let batch = 600usize;
    let one = {
        let mut mc = ModelConfig::compact(d.edge_features.cols());
        mc.static_memory = false;
        mc
    };
    let two = one.clone().with_fanouts(vec![10, 5]);
    println!(
        "layers bench: {} ({} events), batch {batch}, fanouts 1-layer [10] / 2-layer [10, 5]",
        d.name,
        d.graph.num_events()
    );

    // 1. Union-frontier fold factors.
    let (occ1, uniq1) = fold_stats(&d, &one, batch);
    let (occ2, uniq2) = fold_stats(&d, &two, batch);
    let fold1 = occ1 as f64 / uniq1.max(1) as f64;
    let fold2 = occ2 as f64 / uniq2.max(1) as f64;
    println!(
        "fold factor: 1-layer {occ1} occ -> {uniq1} unique ({fold1:.1}x) | 2-layer {occ2} occ -> {uniq2} unique ({fold2:.1}x)"
    );

    // 2 + 3. Per-layer stage costs and end-to-end throughput.
    let cfg = train_cfg(batch, 2);
    let r1 = best_run(&d, &one, &cfg);
    let r2 = best_run(&d, &two, &cfg);
    let ratio = r1.throughput_events_per_sec / r2.throughput_events_per_sec.max(1e-9);
    println!(
        "throughput: 1-layer {:.0} events/s | 2-layer {:.0} events/s ({ratio:.2}x cost of depth)",
        r1.throughput_events_per_sec, r2.throughput_events_per_sec
    );
    println!(
        "embed split: 1-layer {} ms | 2-layer {} ms (of {:.0} / {:.0} ms compute)",
        json_secs(&r1.timing.embed_layer_secs),
        json_secs(&r2.timing.embed_layer_secs),
        r1.timing.compute_secs * 1e3,
        r2.timing.compute_secs * 1e3
    );

    // 4. 2-layer distributed bit-reproducibility (1×1×2, speculation
    // on by default).
    let mut dcfg = TrainConfig::new(ParallelConfig::new(1, 1, 2));
    dcfg.local_batch = 300;
    dcfg.epochs = 2;
    dcfg.eval_every_epoch = false;
    dcfg.eval_max_events = 600;
    dcfg.seed = 9;
    let da = train_distributed(&d, &two, &dcfg, ClusterSpec::new(1, 2));
    let db = train_distributed(&d, &two, &dcfg, ClusterSpec::new(1, 2));
    let reproducible = da.loss_history == db.loss_history
        && da.test_metric == db.test_metric
        && da.memory_checksums == db.memory_checksums;
    println!(
        "2-layer distributed reruns bit-identical: {reproducible} (spec reads {})",
        da.daemon_spec_reads
    );
    assert!(
        reproducible,
        "2-layer distributed run must be deterministic"
    );

    let host_cores = disttgl_bench::host_cores();
    let record = format!(
        "{{\"bench\":\"layers\",\"host_cores\":{host_cores},\"dataset\":\"{}\",\"events\":{},\"local_batch\":{},\
         \"fanouts_1layer\":[10],\"fanouts_2layer\":[10,5],\
         \"fold_occurrence_rows_1layer\":{occ1},\"fold_unique_rows_1layer\":{uniq1},\
         \"fold_factor_1layer\":{fold1:.4},\
         \"fold_occurrence_rows_2layer\":{occ2},\"fold_unique_rows_2layer\":{uniq2},\
         \"fold_factor_2layer\":{fold2:.4},\
         \"embed_layer_ms_1layer\":{},\"embed_layer_ms_2layer\":{},\
         \"compute_ms_1layer\":{:.3},\"compute_ms_2layer\":{:.3},\
         \"throughput_1layer_events_per_sec\":{:.1},\
         \"throughput_2layer_events_per_sec\":{:.1},\
         \"depth_cost_ratio\":{ratio:.4},\
         \"distributed_2layer_bit_reproducible\":{reproducible},\
         \"distributed_2layer_spec_reads\":{}}}\n",
        d.name,
        d.graph.num_events(),
        batch,
        json_secs(&r1.timing.embed_layer_secs),
        json_secs(&r2.timing.embed_layer_secs),
        r1.timing.compute_secs * 1e3,
        r2.timing.compute_secs * 1e3,
        r1.throughput_events_per_sec,
        r2.throughput_events_per_sec,
        da.daemon_spec_reads,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_layers.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(record.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
