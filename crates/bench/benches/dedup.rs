//! Folded vs per-occurrence memory readout / GRU stage
//! (`ModelConfig::dedup_readout`), at the default Table-2-analog batch
//! shape (Wikipedia analog, local batch 600, k = 10 neighbors).
//!
//! Three measurements land in `BENCH_dedup.json`:
//!
//! 1. **Row-fold ratio** — measured unique/occurrence readout rows per
//!    part over a full training sweep (the structural win: phase-2
//!    gather rows, daemon read traffic, and GRU rows all shrink by
//!    this factor).
//! 2. **GRU-stage speedup** — the memory-update stage (fused GRU
//!    forward + backward, plus the expand/fold overhead on the folded
//!    side) timed on the *real* readout blocks of a mid-stream batch.
//! 3. **End-to-end trainer throughput** — `train_single` with dedup
//!    on vs off (host wall-clock; unlike the pipeline-overlap bench
//!    this is a genuine compute reduction, so it shows on 1 CPU).
//!
//! The bench also re-checks the equivalence story inline: forward
//! scores bit-identical, end-to-end metrics matching the
//! per-occurrence oracle (the full proof lives in
//! `tests/dedup_equivalence.rs`).
//!
//! Run: `cargo bench -p disttgl-bench --bench dedup`

use disttgl_core::{
    train_single, BatchPreparer, MemoryAccess, ModelConfig, ParallelConfig, PreparedBatch,
    TgnModel, TrainConfig,
};
use disttgl_data::{generators, Dataset, NegativeStore};
use disttgl_graph::{batching, TCsr};
use disttgl_mem::MemoryState;
use disttgl_nn::{GruCache, GruCell, ParamSet};
use disttgl_tensor::{seeded_rng, Matrix};
use std::io::Write;
use std::time::Instant;

/// Prepares one mid-stream batch (folded + oracle) from a memory state
/// warmed by replaying the preceding batches, so mails and duplicate
/// structure are realistic.
fn mid_stream_batches(
    d: &Dataset,
    mc: &ModelConfig,
    batch: usize,
    warm_batches: usize,
) -> (PreparedBatch, PreparedBatch) {
    let csr = TCsr::build(&d.graph);
    let mc_occ = mc.clone().without_dedup_readout();
    let prep_fold = BatchPreparer::new(d, &csr, mc);
    let prep_occ = BatchPreparer::new(d, &csr, &mc_occ);
    let mut rng = seeded_rng(97);
    let model = TgnModel::new(mc.clone(), &mut rng);
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    for i in 0..warm_batches {
        let b = prep_fold.prepare(i * batch..(i + 1) * batch, &[], 1, &mut mem);
        let out = model.infer_step(&b.pos, None, None);
        MemoryAccess::write(&mut mem, out.write);
    }
    let range = warm_batches * batch..(warm_batches + 1) * batch;
    let folded = prep_fold.prepare(range.clone(), &[], 1, &mut mem.clone());
    let oracle = prep_occ.prepare(range, &[], 1, &mut mem);
    (folded, oracle)
}

/// Best-of-n wall time of `f`.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// GRU memory-update stage (forward + backward) on a readout block.
/// The folded side pays the expand (ŝ → occurrence order) and the
/// gradient fold (occurrence → unique) that the real model performs.
struct StageTimes {
    unfolded: f64,
    folded: f64,
}

fn gru_stage_times(
    mc: &ModelConfig,
    folded: &PreparedBatch,
    oracle: &PreparedBatch,
    reps: usize,
) -> StageTimes {
    let mut rng = seeded_rng(41);
    let mut params = ParamSet::new();
    let cell = GruCell::new(&mut params, "gru", mc.mail_dim(), mc.d_mem, &mut rng);

    let occ_block = oracle.pos.readout.to_readout();
    let uniq_block = folded.pos.readout.to_readout();
    let idx = folded.pos.uniq.as_ref().expect("folded index");
    let occ_rows = occ_block.mem.rows();
    let dh_occ = Matrix::full(occ_rows, mc.d_mem, 0.5);

    let mut cache = GruCache::default();
    let mut s_hat = Matrix::default();
    let unfolded = time_best(reps, || {
        params.zero_grads();
        cell.forward_rows_into(
            &params,
            &occ_block.mail,
            &occ_block.mem,
            0..occ_rows,
            &mut cache,
            &mut s_hat,
        );
        let _ = cell.backward(&mut params, &cache, &dh_occ);
    });

    let mut expanded = Matrix::default();
    let mut dh_fold = Matrix::default();
    let folded_t = time_best(reps, || {
        params.zero_grads();
        cell.forward_rows_into(
            &params,
            &uniq_block.mail,
            &uniq_block.mem,
            0..uniq_block.mem.rows(),
            &mut cache,
            &mut s_hat,
        );
        s_hat.expand_rows(&idx.occ_to_unique, &mut expanded);
        dh_occ.fold_rows_by_index(&idx.occ_to_unique, idx.num_unique(), &mut dh_fold);
        let _ = cell.backward(&mut params, &cache, &dh_fold);
    });
    StageTimes {
        unfolded,
        folded: folded_t,
    }
}

fn main() {
    // Table-2-analog workload, same as the pipeline bench: ~8k-event
    // Wikipedia analog, 172-dim edge features, local batch 600, k=10.
    let d = generators::wikipedia(0.05, 4242);
    let mut mc = ModelConfig::compact(d.edge_features.cols());
    mc.static_memory = false;
    assert!(mc.dedup_readout, "dedup is the default");
    let batch = 600usize;

    println!(
        "dedup bench: {} ({} events), batch {batch}, k={}",
        d.name,
        d.graph.num_events(),
        mc.n_neighbors
    );

    // 1. Row-fold ratio over a full training sweep.
    let csr = TCsr::build(&d.graph);
    let (train_end, _) = d.graph.chronological_split(0.70, 0.15);
    let prep = BatchPreparer::new(&d, &csr, &mc);
    let store = NegativeStore::generate(&d.graph, train_end, 2, 1, 3);
    let (mut occ_total, mut uniq_total) = (0usize, 0usize);
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    for range in batching::chronological_batches(0..train_end, batch) {
        let negs = store.slice(0, range.clone());
        let b = prep.prepare(range, &[negs], 1, &mut mem);
        for (uniq, occ) in [
            (
                &b.pos.uniq,
                disttgl_core::occurrence_rows(b.pos.roots.len(), &b.pos.hops),
            ),
            (
                &b.negs[0].uniq,
                disttgl_core::occurrence_rows(b.negs[0].negs.len(), &b.negs[0].hops),
            ),
        ] {
            occ_total += occ;
            uniq_total += uniq.as_ref().expect("dedup on").num_unique();
        }
    }
    let fold_ratio = occ_total as f64 / uniq_total.max(1) as f64;
    println!(
        "readout rows: {occ_total} occurrences -> {uniq_total} unique ({fold_ratio:.2}x fold)"
    );

    // 2. GRU/memory-update stage, real mid-stream readout blocks.
    let (folded_batch, oracle_batch) = mid_stream_batches(&d, &mc, batch, 4);
    let stage = gru_stage_times(&mc, &folded_batch, &oracle_batch, 5);
    let stage_speedup = stage.unfolded / stage.folded.max(1e-12);
    println!(
        "gru stage: unfolded {:.2}ms | folded {:.2}ms | speedup {stage_speedup:.2}x (target >= 2x)",
        stage.unfolded * 1e3,
        stage.folded * 1e3
    );

    // Inline forward bit-identity check on the same batch.
    let mut rng = seeded_rng(5);
    let model = TgnModel::new(mc.clone(), &mut rng);
    let out_f = model.infer_step(&folded_batch.pos, None, None);
    let out_o = model.infer_step(&oracle_batch.pos, None, None);
    let bit_identical = out_f.write.mem == out_o.write.mem && out_f.write.mail == out_o.write.mail;
    println!("forward bit-identical: {bit_identical}");

    // 3. End-to-end trainer throughput, dedup on vs off.
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = batch;
    cfg.epochs = 3;
    cfg.eval_every_epoch = false;
    cfg.seed = 7;
    let run = |m: &ModelConfig| {
        let _ = train_single(&d, m, &cfg); // warm-up
        let mut best: Option<disttgl_core::RunResult> = None;
        for _ in 0..2 {
            let r = train_single(&d, m, &cfg);
            if best
                .as_ref()
                .map(|b| r.throughput_events_per_sec > b.throughput_events_per_sec)
                .unwrap_or(true)
            {
                best = Some(r);
            }
        }
        best.expect("at least one run")
    };
    let on = run(&mc);
    let off = run(&mc.clone().without_dedup_readout());
    let e2e_speedup = on.throughput_events_per_sec / off.throughput_events_per_sec.max(1e-9);
    let metric_delta = (on.test_metric - off.test_metric).abs();
    println!(
        "trainer: folded {:.0} events/s | per-occurrence {:.0} events/s | speedup {e2e_speedup:.2}x",
        on.throughput_events_per_sec, off.throughput_events_per_sec
    );
    println!(
        "end-to-end metrics: folded {:.4} vs oracle {:.4} (|delta| {metric_delta:.4})",
        on.test_metric, off.test_metric
    );

    let host_cores = disttgl_bench::host_cores();
    let record = format!(
        "{{\"bench\":\"dedup\",\"host_cores\":{host_cores},\"dataset\":\"{}\",\"events\":{},\"local_batch\":{},\
         \"n_neighbors\":{},\
         \"occurrence_rows\":{},\"unique_rows\":{},\"fold_ratio\":{:.4},\
         \"gru_stage_unfolded_ms\":{:.3},\"gru_stage_folded_ms\":{:.3},\
         \"gru_stage_speedup\":{:.4},\
         \"trainer_folded_events_per_sec\":{:.1},\"trainer_unfolded_events_per_sec\":{:.1},\
         \"trainer_speedup\":{:.4},\
         \"forward_bit_identical\":{},\"test_metric_folded\":{:.5},\
         \"test_metric_oracle\":{:.5},\"test_metric_abs_delta\":{:.5},\
         \"metrics_match\":{}}}\n",
        d.name,
        d.graph.num_events(),
        batch,
        mc.n_neighbors,
        occ_total,
        uniq_total,
        fold_ratio,
        stage.unfolded * 1e3,
        stage.folded * 1e3,
        stage_speedup,
        on.throughput_events_per_sec,
        off.throughput_events_per_sec,
        e2e_speedup,
        bit_identical,
        on.test_metric,
        off.test_metric,
        metric_delta,
        metric_delta < 0.05
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dedup.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(record.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
