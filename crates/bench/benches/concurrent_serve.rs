//! Concurrent serving under load: reader-thread scaling, open-loop
//! mixed ingest/query traffic, and backpressure engagement for
//! `core::serve::ConcurrentServe` (the MVCC snapshot-read plane).
//!
//! Measurements landing in `BENCH_concurrent_serve.json`:
//!
//! 1. **Inline equivalence guard** — a mixed concurrent run (writer
//!    draining the bounded queue while a reader pool answers) must be
//!    bit-identical to a serialized `ServeSession` replay of the same
//!    admitted order, at every answer's reported watermark, before any
//!    number is published.
//! 2. **Closed-loop query scaling** — quiescent-plane query throughput
//!    at 1/2/4 reader threads (sweep gated on
//!    `std::thread::available_parallelism`; `host_cores` is stamped in
//!    the artifact so a 1-core container's flat curve reads as what it
//!    is).
//! 3. **Open-loop mixed load** — a producer enqueues ingest slabs and
//!    readers fire queries on fixed arrival schedules; latency is
//!    measured from *scheduled* arrival (coordinated-omission-free),
//!    reported as p50/p99/p999 per class (query vs slab apply), plus
//!    achieved events/s and drift-class counts.
//! 4. **Backpressure engagement** — a flat-out producer against a tiny
//!    queue must shed with typed `Overloaded` errors, and everything
//!    admitted must still land exactly once.
//! 5. **Steady-state allocation** — after warmup, the per-query
//!    allocation count of the read path must be flat across
//!    consecutive windows (the reader scratch arena stops growing).
//!
//! Run: `cargo bench -p disttgl-bench --bench concurrent_serve`

use disttgl_core::serve::{QueryRequest, ServeSession};
use disttgl_core::{
    ConcurrentOptions, ConcurrentServe, LatencyHistogram, LatencySummary, ModelConfig,
    ReaderContext, TgnModel,
};
use disttgl_data::generators;
use disttgl_graph::{batching, Event};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Allocation-counting wrapper around the system allocator, for the
/// steady-state assertion (phase 5). Counts allocation *events*, not
/// bytes — a growing scratch arena shows up as extra `alloc`/`realloc`
/// calls per query.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, new_size) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARM_SLAB: usize = 600;
const LOAD_SLAB: usize = 100;

fn warm_session<'a>(
    model: &'a TgnModel,
    d: &'a disttgl_data::Dataset,
    upto: usize,
) -> ServeSession<'a> {
    let mut session = ServeSession::new(model, d, None);
    for r in batching::chronological_batches(0..upto, WARM_SLAB) {
        session
            .ingest(&d.graph.events()[r])
            .expect("chronological warmup slab");
    }
    session
}

fn query_jobs(events: &[Event], t: f32, n_jobs: usize, batch: usize) -> Vec<Vec<QueryRequest>> {
    (0..n_jobs)
        .map(|j| {
            (0..batch)
                .map(|i| {
                    let e = &events[(j * 13 + i * 7) % events.len()];
                    QueryRequest::LinkScore {
                        src: e.src,
                        dst: events[(j * 5 + i * 11 + 3) % events.len()].dst,
                        t,
                    }
                })
                .collect()
        })
        .collect()
}

fn json_latency(s: &LatencySummary) -> String {
    format!(
        "{{\"count\":{},\"mean_ms\":{:.4},\"p50_ms\":{:.4},\"p99_ms\":{:.4},\"p999_ms\":{:.4},\"max_ms\":{:.4}}}",
        s.count,
        s.mean_secs * 1e3,
        s.p50_secs * 1e3,
        s.p99_secs * 1e3,
        s.p999_secs * 1e3,
        s.max_secs * 1e3
    )
}

/// Phase 1: concurrent answers replayed against a serialized session,
/// watermark by watermark, plus the final memory digest.
fn equivalence_guard(model: &TgnModel, d: &disttgl_data::Dataset, warm_end: usize, readers: usize) {
    let train_events = d.graph.events();
    let slabs: Vec<Vec<Event>> = train_events[warm_end..(warm_end + 480).min(train_events.len())]
        .chunks(60)
        .map(|c| c.to_vec())
        .collect();
    let t_query = train_events.last().expect("events").t + 1.0;
    let jobs = query_jobs(&train_events[0..warm_end], t_query, 16, 3);

    let serve = ConcurrentServe::from_session(
        warm_session(model, d, warm_end),
        ConcurrentOptions::default(),
    );
    let stop = AtomicBool::new(false);
    let answers = std::thread::scope(|s| {
        s.spawn(|| serve.run_writer(&stop));
        let producer = s.spawn(|| {
            for slab in &slabs {
                while serve.enqueue_ingest(slab.clone()).is_err() {
                    std::thread::sleep(Duration::from_micros(50));
                }
                std::thread::sleep(Duration::from_micros(300));
            }
        });
        let answers = serve.answer_all(&jobs, readers);
        // Producer first: a stopped writer no longer frees capacity.
        producer.join().expect("producer");
        stop.store(true, Ordering::Release);
        answers
    });
    assert_eq!(serve.watermark(), slabs.len() as u64, "writer drained all");

    // Serialized replay of the same admitted order: answer each job at
    // its reported watermark, then compare bit for bit.
    let mut oracle = warm_session(model, d, warm_end);
    for w in 0..=slabs.len() as u64 {
        for (job, ans) in jobs.iter().zip(&answers) {
            let ans = ans.as_ref().expect("valid bench query");
            if ans.watermark == w {
                assert_eq!(
                    ans.responses,
                    oracle.query(job).expect("valid bench query"),
                    "concurrent answer at watermark {w} must equal serialized replay"
                );
            }
        }
        if (w as usize) < slabs.len() {
            oracle.ingest(&slabs[w as usize]).expect("admitted slab");
        }
    }
    assert_eq!(
        serve.memory_checksum(),
        oracle.memory_checksum(),
        "final memory digest must match serialized replay"
    );
    let st = serve.stats();
    println!(
        "equivalence guard: {} answers bit-identical to serialized replay \
         (clean {}, repaired {}, resampled {}), memory digests equal",
        jobs.len(),
        st.clean_queries,
        st.repaired_queries,
        st.resampled_queries
    );
}

/// Phase 2: quiescent closed-loop query throughput per reader count.
fn closed_loop_qps(serve: &ConcurrentServe<'_>, jobs: &[Vec<QueryRequest>], readers: usize) -> f64 {
    // Untimed pass to fault scratch arenas in.
    let _ = serve.answer_all(&jobs[0..readers.min(jobs.len())], readers);
    let t0 = Instant::now();
    let answers = serve.answer_all(jobs, readers);
    let wall = t0.elapsed().as_secs_f64();
    let n: usize = answers
        .iter()
        .map(|a| a.as_ref().expect("valid bench query").responses.len())
        .sum();
    n as f64 / wall
}

struct SweepResult {
    readers: usize,
    offered_query_hz: f64,
    achieved_queries_per_sec: f64,
    achieved_ingest_events_per_sec: f64,
    shed_events: usize,
    query_latency: LatencySummary,
    slab_apply_latency: LatencySummary,
    clean: u64,
    repaired: u64,
    resampled: u64,
    backpressure_rejections: u64,
    max_queue_depth: u64,
}

/// Phase 3: open-loop mixed load at fixed arrival schedules. Query
/// latency is measured from the scheduled arrival instant, so a reader
/// that falls behind pays its backlog in the tail instead of silently
/// thinning the schedule (no coordinated omission).
#[allow(clippy::too_many_arguments)]
fn open_loop_sweep(
    serve: &ConcurrentServe<'_>,
    jobs: &[Vec<QueryRequest>],
    slabs: &[Vec<Event>],
    readers: usize,
    query_interval: Duration,
    slab_interval: Duration,
) -> SweepResult {
    let before = serve.stats();
    let stop_writer = AtomicBool::new(false);
    let stop_readers = AtomicBool::new(false);
    let (q_hist, slab_hist, answered, shed, wall) = std::thread::scope(|s| {
        // Writer: drain loop, charging each drained slab its share of
        // the drain call.
        let writer = s.spawn(|| {
            let mut hist = LatencyHistogram::new();
            loop {
                let t0 = Instant::now();
                let n = serve.drain_queue();
                if n > 0 {
                    let per = t0.elapsed().as_secs_f64() / n as f64;
                    for _ in 0..n {
                        hist.record(per);
                    }
                } else if stop_writer.load(Ordering::Acquire) {
                    return hist;
                } else {
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        });
        // Producer: open-loop slab arrivals; overload sheds the slab.
        let producer = s.spawn(|| {
            let start = Instant::now();
            let mut shed = 0usize;
            for (i, slab) in slabs.iter().enumerate() {
                let due = slab_interval.mul_f64(i as f64);
                while start.elapsed() < due {
                    std::thread::sleep(Duration::from_micros(50));
                }
                if serve.enqueue_ingest(slab.clone()).is_err() {
                    shed += slab.len();
                }
            }
            (shed, start.elapsed())
        });
        // Readers: open-loop query arrivals, striped over the job pool.
        let reader_handles: Vec<_> = (0..readers)
            .map(|r| {
                let stop_readers = &stop_readers;
                s.spawn(move || {
                    let mut cx = ReaderContext::new();
                    let mut hist = LatencyHistogram::new();
                    let start = Instant::now();
                    let mut i = 0usize;
                    while !stop_readers.load(Ordering::Acquire) {
                        let due = query_interval.mul_f64(i as f64);
                        while start.elapsed() < due {
                            if stop_readers.load(Ordering::Acquire) {
                                return hist;
                            }
                            std::thread::sleep(Duration::from_micros(50));
                        }
                        let job = &jobs[(r + i * readers) % jobs.len()];
                        serve.query(job, &mut cx).expect("valid bench query");
                        hist.record((start.elapsed() - due).as_secs_f64());
                        i += 1;
                    }
                    hist
                })
            })
            .collect();
        let (shed, wall) = producer.join().expect("producer");
        stop_readers.store(true, Ordering::Release);
        let mut q_hist = LatencyHistogram::new();
        let mut answered = 0u64;
        for h in reader_handles {
            let h = h.join().expect("reader");
            answered += h.len() as u64;
            q_hist = merge_hist(q_hist, h);
        }
        stop_writer.store(true, Ordering::Release);
        let slab_hist = writer.join().expect("writer");
        (q_hist, slab_hist, answered, shed, wall)
    });
    let after = serve.stats();
    let mut q_hist = q_hist;
    let mut slab_hist = slab_hist;
    SweepResult {
        readers,
        offered_query_hz: readers as f64 / query_interval.as_secs_f64(),
        achieved_queries_per_sec: answered as f64 / wall.as_secs_f64(),
        achieved_ingest_events_per_sec: (after.events_applied - before.events_applied) as f64
            / wall.as_secs_f64(),
        shed_events: shed,
        query_latency: q_hist.summary(),
        slab_apply_latency: slab_hist.summary(),
        clean: after.clean_queries - before.clean_queries,
        repaired: after.repaired_queries - before.repaired_queries,
        resampled: after.resampled_queries - before.resampled_queries,
        backpressure_rejections: after.backpressure_rejections - before.backpressure_rejections,
        max_queue_depth: after.max_queue_depth,
    }
}

fn merge_hist(mut into: LatencyHistogram, mut from: LatencyHistogram) -> LatencyHistogram {
    // Exact merge through nearest-rank extraction: percentile
    // 100·i/n is precisely the i-th sorted sample, so every sample
    // transfers bit-for-bit.
    let n = from.len();
    for i in 1..=n {
        into.record(from.percentile(100.0 * i as f64 / n as f64));
    }
    into
}

fn main() {
    let host_cores = disttgl_bench::host_cores();
    let d = generators::wikipedia(0.05, 2024);
    let mc = {
        let mut mc = ModelConfig::compact(d.edge_features.cols());
        mc.static_memory = false;
        mc
    };
    let model = TgnModel::new(mc.clone(), &mut disttgl_tensor::seeded_rng(3));
    let (train_end, _) = d.graph.chronological_split(0.70, 0.15);
    let warm_end = train_end / 2;
    println!(
        "concurrent serve bench: {} ({} events, warm {warm_end}, load window {}), {host_cores} host core(s)",
        d.name,
        d.graph.num_events(),
        train_end - warm_end
    );

    // 1. Equivalence guard gates everything.
    equivalence_guard(&model, &d, warm_end, if host_cores >= 2 { 2 } else { 1 });

    let events = d.graph.events();
    let t_query = events[train_end - 1].t + 1.0;

    // 5. Steady-state allocation: after warmup, a quiescent query's
    // allocation count must be identical across consecutive windows —
    // the reader scratch arena has stopped growing. (Run before any
    // other thread is live so the global counter is ours alone.)
    let (allocs_per_query, alloc_growth) = {
        let serve = ConcurrentServe::from_session(
            warm_session(&model, &d, train_end),
            ConcurrentOptions::default(),
        );
        let jobs = query_jobs(&events[0..train_end], t_query, 8, 8);
        let mut cx = ReaderContext::new();
        for job in &jobs {
            serve.query(job, &mut cx).expect("valid bench query");
        }
        let window = |cx: &mut ReaderContext| {
            let a0 = ALLOC_CALLS.load(Ordering::Relaxed);
            for job in &jobs {
                let ans = serve.query(job, cx).expect("valid bench query");
                std::hint::black_box(&ans);
            }
            ALLOC_CALLS.load(Ordering::Relaxed) - a0
        };
        let w1 = window(&mut cx);
        let w2 = window(&mut cx);
        assert_eq!(
            w2, w1,
            "steady-state allocation must be flat: the reader scratch arena is still growing"
        );
        println!(
            "steady-state allocations: {:.1}/query across {} queries, growth 0",
            w2 as f64 / jobs.len() as f64,
            jobs.len()
        );
        (w2 as f64 / jobs.len() as f64, w1 as i64 - w2 as i64)
    };

    // 2. Closed-loop reader scaling on a quiescent plane.
    let reader_sweep: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&r| r == 1 || r <= host_cores)
        .collect();
    let closed: Vec<(usize, f64)> = {
        let serve = ConcurrentServe::from_session(
            warm_session(&model, &d, train_end),
            ConcurrentOptions::default(),
        );
        let jobs = query_jobs(&events[0..train_end], t_query, 160, 8);
        reader_sweep
            .iter()
            .map(|&r| {
                let qps = closed_loop_qps(&serve, &jobs, r);
                println!("closed-loop {r} reader(s): {qps:>8.0} queries/s");
                (r, qps)
            })
            .collect()
    };
    let scaling_1_to_2 = match (closed.first(), closed.iter().find(|(r, _)| *r == 2)) {
        (Some((1, q1)), Some((_, q2))) if *q1 > 0.0 => Some(q2 / q1),
        _ => None,
    };
    if let Some(s) = scaling_1_to_2 {
        println!("query scaling 1→2 readers: {s:.2}×");
        if host_cores >= 2 {
            assert!(s >= 1.3, "multi-core host should scale reads (got {s:.2}×)");
        }
    }

    // 3. Open-loop mixed load per reader count: fresh plane per sweep
    // (each consumes its own chronological chunk of the load window).
    let mut open: Vec<SweepResult> = Vec::new();
    {
        let load_events = &events[warm_end..train_end];
        let chunk = load_events.len() / reader_sweep.len().max(1);
        for (si, &r) in reader_sweep.iter().enumerate() {
            let serve = ConcurrentServe::from_session(
                warm_session(&model, &d, warm_end + si * chunk),
                ConcurrentOptions::default(),
            );
            let chunk_events = &load_events[si * chunk..(si + 1) * chunk];
            let slabs: Vec<Vec<Event>> =
                chunk_events.chunks(LOAD_SLAB).map(|c| c.to_vec()).collect();
            let jobs = query_jobs(&events[0..warm_end + si * chunk], t_query, 64, 4);
            let res = open_loop_sweep(
                &serve,
                &jobs,
                &slabs,
                r,
                Duration::from_millis(8),
                Duration::from_millis(30),
            );
            println!(
                "open-loop {r} reader(s): {:>6.0} q/s (offered {:>5.0}), ingest {:>6.0} ev/s, \
                 q p50 {:.2} ms p99 {:.2} ms | drift clean {} repaired {} resampled {}",
                res.achieved_queries_per_sec,
                res.offered_query_hz,
                res.achieved_ingest_events_per_sec,
                res.query_latency.p50_secs * 1e3,
                res.query_latency.p99_secs * 1e3,
                res.clean,
                res.repaired,
                res.resampled
            );
            open.push(res);
        }
    }

    // 4. Backpressure engagement: flat-out producer against a tiny
    // queue must shed typed errors, and everything admitted lands.
    let (bp_rejections, bp_admitted_events, bp_applied_events) = {
        let serve = ConcurrentServe::from_session(
            warm_session(&model, &d, warm_end),
            ConcurrentOptions {
                ingest_queue_capacity: 2 * LOAD_SLAB,
            },
        );
        let slabs: Vec<Vec<Event>> = events[warm_end..(warm_end + 12 * LOAD_SLAB).min(train_end)]
            .chunks(LOAD_SLAB)
            .map(|c| c.to_vec())
            .collect();
        let mut admitted = 0usize;
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            // Slow-start the writer so the producer genuinely races it.
            let writer = s.spawn(|| {
                std::thread::sleep(Duration::from_millis(5));
                serve.run_writer(&stop)
            });
            for slab in &slabs {
                let n = slab.len();
                if serve.enqueue_ingest(slab.clone()).is_ok() {
                    admitted += n;
                }
            }
            stop.store(true, Ordering::Release);
            writer.join().expect("writer");
        });
        let st = serve.stats();
        assert!(
            st.backpressure_rejections > 0,
            "flat-out producer against a 2-slab queue must engage backpressure"
        );
        assert_eq!(
            st.events_applied as usize, admitted,
            "every admitted event lands exactly once"
        );
        println!(
            "backpressure: {} rejections, {}/{} events admitted and applied",
            st.backpressure_rejections,
            admitted,
            slabs.iter().map(Vec::len).sum::<usize>()
        );
        (st.backpressure_rejections, admitted, st.events_applied)
    };

    let closed_json: Vec<String> = closed
        .iter()
        .map(|(r, qps)| format!("{{\"readers\":{r},\"queries_per_sec\":{qps:.1}}}"))
        .collect();
    let open_json: Vec<String> = open
        .iter()
        .map(|r| {
            format!(
                "{{\"readers\":{},\"offered_query_hz\":{:.1},\"achieved_queries_per_sec\":{:.1},\
                 \"achieved_ingest_events_per_sec\":{:.1},\"shed_events\":{},\
                 \"query_latency\":{},\"slab_apply_latency\":{},\
                 \"drift\":{{\"clean\":{},\"repaired\":{},\"resampled\":{}}},\
                 \"backpressure_rejections\":{},\"max_queue_depth\":{}}}",
                r.readers,
                r.offered_query_hz,
                r.achieved_queries_per_sec,
                r.achieved_ingest_events_per_sec,
                r.shed_events,
                json_latency(&r.query_latency),
                json_latency(&r.slab_apply_latency),
                r.clean,
                r.repaired,
                r.resampled,
                r.backpressure_rejections,
                r.max_queue_depth
            )
        })
        .collect();
    let record = format!(
        "{{\"bench\":\"concurrent_serve\",\"host_cores\":{host_cores},\
         \"dataset\":\"{}\",\"events\":{},\"warm_events\":{warm_end},\
         \"reader_sweep\":[{}],\
         \"equivalence_bit_identical\":true,\
         \"steady_state_allocs_per_query\":{allocs_per_query:.1},\
         \"steady_state_alloc_growth\":{alloc_growth},\
         \"closed_loop\":[{}],\
         \"scaling_1_to_2\":{},\
         \"open_loop\":[{}],\
         \"backpressure\":{{\"rejections\":{bp_rejections},\"admitted_events\":{bp_admitted_events},\
         \"applied_events\":{bp_applied_events}}}}}\n",
        d.name,
        d.graph.num_events(),
        reader_sweep
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(","),
        closed_json.join(","),
        scaling_1_to_2
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "null".into()),
        open_json.join(","),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_concurrent_serve.json"
    );
    match std::fs::File::create(path).and_then(|mut f| {
        use std::io::Write;
        f.write_all(record.as_bytes())
    }) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
