//! Criterion micro-benchmarks of the kernels on the training critical
//! path: matmul, GRU, temporal attention, sampling, memory daemon
//! round-trips, and the all-reduce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disttgl_cluster::CommunicatorGroup;
use disttgl_core::{BatchPreparer, MemoryAccess, ModelConfig, TgnModel};
use disttgl_data::{generators, NegativeStore};
use disttgl_graph::{RecentNeighborSampler, TCsr};
use disttgl_mem::{MemoryDaemon, MemoryState, MemoryWrite};
use disttgl_nn::{GruCell, ParamSet, TemporalAttention};
use disttgl_tensor::{seeded_rng, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensor/matmul");
    for &n in &[64usize, 256] {
        let mut rng = seeded_rng(1);
        let a = Matrix::uniform(n, n, 1.0, &mut rng);
        let b = Matrix::uniform(n, n, 1.0, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    g.finish();
}

fn bench_gru(c: &mut Criterion) {
    let mut rng = seeded_rng(2);
    let mut ps = ParamSet::new();
    let cell = GruCell::new(&mut ps, "g", 252, 32, &mut rng);
    let x = Matrix::uniform(600, 252, 1.0, &mut rng);
    let h = Matrix::uniform(600, 32, 1.0, &mut rng);
    c.bench_function("nn/gru_forward_600x252", |b| {
        b.iter(|| std::hint::black_box(cell.infer(&ps, &x, &h)));
    });
    c.bench_function("nn/gru_fwd_bwd_600x252", |b| {
        b.iter(|| {
            let (y, cache) = cell.forward(&ps, &x, &h);
            let up = Matrix::full(y.rows(), y.cols(), 1.0);
            let mut ps2 = std::mem::take(&mut ps);
            let out = cell.backward(&mut ps2, &cache, &up);
            ps = ps2;
            std::hint::black_box(out)
        });
    });
}

fn bench_attention(c: &mut Criterion) {
    let mut rng = seeded_rng(3);
    let mut ps = ParamSet::new();
    let att = TemporalAttention::new(&mut ps, "a", 48, 220, 32, 10, &mut rng);
    let b_roots = 600usize;
    let qf = Matrix::uniform(b_roots, 48, 1.0, &mut rng);
    let kvf = Matrix::uniform(b_roots * 10, 220, 1.0, &mut rng);
    let counts = vec![10usize; b_roots];
    c.bench_function("nn/attention_forward_600x10", |b| {
        b.iter(|| std::hint::black_box(att.infer(&ps, &qf, &kvf, &counts)));
    });
}

fn bench_sampler(c: &mut Criterion) {
    let d = generators::wikipedia(0.02, 4);
    let csr = TCsr::build(&d.graph);
    let sampler = RecentNeighborSampler::new(10);
    let roots: Vec<u32> = d.graph.events()[..600].iter().map(|e| e.src).collect();
    let times: Vec<f32> = vec![d.graph.max_time(); 600];
    c.bench_function("graph/sample_600_roots_k10", |b| {
        b.iter(|| std::hint::black_box(sampler.sample(&csr, &roots, &times)));
    });
}

fn bench_memory_daemon(c: &mut Criterion) {
    let nodes: Vec<u32> = (0..600u32).collect();
    c.bench_function("mem/daemon_read_write_600_rows", |b| {
        b.iter_custom(|iters| {
            let daemon =
                MemoryDaemon::spawn(MemoryState::new(2048, 32, 252), 1, 1, iters as usize, 1);
            let client = daemon.client(0);
            let start = std::time::Instant::now();
            for _ in 0..iters {
                let r = client.read(&nodes);
                client.write(MemoryWrite {
                    nodes: nodes.clone(),
                    mem: r.mem,
                    mem_ts: r.mem_ts,
                    mail: r.mail,
                    mail_ts: r.mail_ts,
                });
            }
            let elapsed = start.elapsed();
            let _ = daemon.join();
            elapsed
        });
    });
}

fn bench_allreduce(c: &mut Criterion) {
    c.bench_function("cluster/allreduce_100k_x4", |b| {
        b.iter_custom(|iters| {
            let group = CommunicatorGroup::single_machine(4);
            let handles: Vec<_> = (0..4)
                .map(|r| {
                    let comm = group.communicator(r);
                    std::thread::spawn(move || {
                        let mut v = vec![r as f32; 100_000];
                        let start = std::time::Instant::now();
                        for _ in 0..iters {
                            comm.allreduce_mean(&mut v);
                        }
                        start.elapsed()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .max()
                .unwrap()
        });
    });
}

fn bench_train_step(c: &mut Criterion) {
    let d = generators::wikipedia(0.02, 5);
    let csr = TCsr::build(&d.graph);
    let mc = ModelConfig::compact(d.edge_features.cols());
    let mut rng = seeded_rng(6);
    let mut model = TgnModel::new(mc.clone(), &mut rng);
    let prep = BatchPreparer::new(&d, &csr, &mc);
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    let store = NegativeStore::generate(&d.graph, 600, 1, 1, 7);
    let batch = prep.prepare(
        0..600.min(d.graph.num_events()),
        &[store.slice(0, 0..600.min(d.graph.num_events()))],
        1,
        &mut mem,
    );
    c.bench_function("core/train_step_bs600", |b| {
        b.iter(|| {
            model.params.zero_grads();
            std::hint::black_box(model.train_step(&batch.pos, Some(&batch.negs[0]), None))
        });
    });
    let _ = MemoryAccess::read(&mut mem, &[0]);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_gru, bench_attention, bench_sampler, bench_memory_daemon, bench_allreduce, bench_train_step
}
criterion_main!(benches);
