//! Hardware-width kernel and quantized-memory measurements, published
//! to `BENCH_kernels.json`.
//!
//! What lands in the record:
//!
//! 1. **SIMD vs scalar microkernels** — best-of-N wall time for the
//!    dispatched (AVX2 when available) vs forced-scalar path of the
//!    dominant kernels at the attention shapes the trainer actually
//!    runs: `A · Bᵀ` scores (frontier rows × d), the fused GRU cell,
//!    row softmax, and the row gather. Every A/B pair is also checked
//!    bit-identical — the speedup may never buy a different number.
//! 2. **Blocked vs serial matmul** — the register-blocked `dot4` path
//!    against the serial-reduction reference
//!    (`matmul_transpose_b_serial`), the ≥2× headline number.
//! 3. **End-to-end trainer delta** — `train_single` events/s with
//!    kernels dispatched vs forced scalar, bit-identical losses.
//! 4. **Quantized memory** — resident store bytes f32 vs bf16 and the
//!    test-MRR / F1 deltas of `quantized_memory` runs against the
//!    exact f32 oracle across seeds (the recoverable-precision
//!    evidence).
//!
//! Run: `cargo bench -p disttgl-bench --bench kernels`

use disttgl_core::{train_single, ModelConfig, ParallelConfig, TrainConfig};
use disttgl_data::generators;
use disttgl_nn::{GruCell, ParamSet};
use disttgl_tensor::{kernels, seeded_rng, Matrix};
use std::io::Write;
use std::time::Instant;

/// Best-of-`reps` wall seconds for `f` (runs once to warm up first).
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn checksum(m: &Matrix) -> u64 {
    m.as_slice()
        .iter()
        .fold(0u64, |acc, v| acc.rotate_left(9) ^ v.to_bits() as u64)
}

/// A/B one kernel: dispatched vs forced-scalar, asserting bit-equal
/// outputs. Returns (scalar_secs, simd_secs).
fn ab<M: PartialEq + std::fmt::Debug>(reps: usize, mut run: impl FnMut() -> M) -> (f64, f64, bool) {
    kernels::force_scalar(true);
    let scalar_out = run();
    let scalar = best_secs(reps, || {
        std::hint::black_box(run());
    });
    kernels::force_scalar(false);
    let simd_out = run();
    let simd = best_secs(reps, || {
        std::hint::black_box(run());
    });
    assert_eq!(scalar_out, simd_out, "kernel A/B paths disagree");
    (scalar, simd, kernels::simd_active())
}

struct Shape {
    label: &'static str,
    rows: usize,
    d: usize,
    slots: usize,
}

fn main() {
    let simd_available = kernels::simd_active();
    println!("kernels bench: simd_active = {simd_available}");
    let reps = 12;

    // Attention-shaped matmuls: Q (rows × d) · Kᵀ (slots × d), the
    // frontier geometry of the compact harness (d_emb 48..60 inputs)
    // and the paper model (d 200/212), batch ≈ 2200 frontier rows.
    let shapes = [
        Shape {
            label: "compact",
            rows: 2200,
            d: 48,
            slots: 60,
        },
        Shape {
            label: "paper",
            rows: 2200,
            d: 200,
            slots: 212,
        },
    ];
    let mut shape_records = Vec::new();
    for s in &shapes {
        let mut rng = seeded_rng(11);
        let a = Matrix::uniform(s.rows, s.d, 1.0, &mut rng);
        let b = Matrix::uniform(s.slots, s.d, 1.0, &mut rng);

        // Serial-reduction reference: the pre-optimization numerics.
        let serial = best_secs(reps, || {
            std::hint::black_box(a.matmul_transpose_b_serial(&b));
        });
        let (scalar, simd, _) = ab(reps, || checksum(&a.matmul_transpose_b(&b)));
        let speedup_vs_serial = serial / simd.max(1e-12);
        let speedup_vs_scalar = scalar / simd.max(1e-12);
        println!(
            "matmul_transpose_b {} ({}x{} · {}x{}ᵀ): serial {:.3} ms, laned scalar {:.3} ms, dispatched {:.3} ms ({speedup_vs_serial:.2}x vs serial, {speedup_vs_scalar:.2}x vs scalar)",
            s.label, s.rows, s.d, s.slots, s.d,
            serial * 1e3, scalar * 1e3, simd * 1e3
        );
        if simd_available {
            assert!(
                speedup_vs_serial >= 2.0,
                "{}: expected >=2x vs the serial reference, got {speedup_vs_serial:.2}x",
                s.label
            );
        }
        shape_records.push(format!(
            "{{\"shape\":\"{}\",\"rows\":{},\"d\":{},\"slots\":{},\
             \"serial_ms\":{:.4},\"scalar_ms\":{:.4},\"simd_ms\":{:.4},\
             \"speedup_vs_serial\":{:.3},\"speedup_vs_scalar\":{:.3}}}",
            s.label,
            s.rows,
            s.d,
            s.slots,
            serial * 1e3,
            scalar * 1e3,
            simd * 1e3,
            speedup_vs_serial,
            speedup_vs_scalar
        ));
    }

    // Fused GRU cell at the memory-update shape (unique rows × d_mem,
    // mail input): compact widths, ~1100 unique nodes per batch.
    let (gru_rows, d_mem, mail) = (1100usize, 100usize, 412usize);
    let mut rng = seeded_rng(5);
    let mut params = ParamSet::new();
    let cell = GruCell::new(&mut params, "bench", mail, d_mem, &mut rng);
    let x = Matrix::uniform(gru_rows, mail, 0.5, &mut rng);
    let h = Matrix::uniform(gru_rows, d_mem, 0.5, &mut rng);
    let (gru_scalar, gru_simd, _) = ab(reps, || {
        let (h2, _) = cell.forward(&params, &x, &h);
        checksum(&h2)
    });
    println!(
        "gru forward ({gru_rows}x{d_mem}, mail {mail}): scalar {:.3} ms, dispatched {:.3} ms ({:.2}x)",
        gru_scalar * 1e3,
        gru_simd * 1e3,
        gru_scalar / gru_simd.max(1e-12)
    );

    // Row softmax at the attention-probability shape.
    let logits = Matrix::uniform(2200, 212, 4.0, &mut rng);
    let (sm_scalar, sm_simd, _) = ab(reps, || {
        let mut m = logits.clone();
        m.softmax_rows_inplace();
        checksum(&m)
    });
    println!(
        "softmax_rows (2200x212): scalar {:.3} ms, dispatched {:.3} ms ({:.2}x)",
        sm_scalar * 1e3,
        sm_simd * 1e3,
        sm_scalar / sm_simd.max(1e-12)
    );

    // Row gather (memcpy-bound — expect ~1x, reported for the record).
    let table = Matrix::uniform(8192, 212, 1.0, &mut rng);
    let idx: Vec<usize> = (0..4096).map(|i| (i * 37) % 8192).collect();
    let (ga_scalar, ga_simd, _) = ab(reps, || {
        let mut out = Matrix::default();
        table.gather_rows_into(&idx, &mut out);
        checksum(&out)
    });
    println!(
        "gather_rows (4096 of 8192x212): scalar {:.3} ms, dispatched {:.3} ms ({:.2}x)",
        ga_scalar * 1e3,
        ga_simd * 1e3,
        ga_scalar / ga_simd.max(1e-12)
    );

    // End-to-end trainer: dispatched vs forced scalar, bit-identical.
    let d = generators::wikipedia(0.01, 31);
    let mc = ModelConfig::compact(d.edge_features.cols());
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 300;
    cfg.epochs = 2;
    cfg.eval_every_epoch = false;
    kernels::force_scalar(true);
    let run_scalar = train_single(&d, &mc, &cfg);
    kernels::force_scalar(false);
    let run_simd = train_single(&d, &mc, &cfg);
    let e2e_identical = run_scalar.loss_history == run_simd.loss_history
        && run_scalar.test_metric == run_simd.test_metric;
    assert!(e2e_identical, "SIMD on/off must not change the trajectory");
    let e2e_speedup =
        run_simd.throughput_events_per_sec / run_scalar.throughput_events_per_sec.max(1e-9);
    println!(
        "train_single e2e: scalar {:.0} events/s, dispatched {:.0} events/s ({e2e_speedup:.2}x), bit-identical: {e2e_identical}",
        run_scalar.throughput_events_per_sec, run_simd.throughput_events_per_sec
    );
    println!(
        "kernel shares (dispatched): matmul {:.0} ms, gru {:.0} ms, softmax {:.0} ms, gather {:.0} ms of {:.0} ms compute",
        run_simd.timing.matmul_secs * 1e3,
        run_simd.timing.gru_secs * 1e3,
        run_simd.timing.softmax_secs * 1e3,
        run_simd.timing.gather_secs * 1e3,
        run_simd.timing.compute_secs * 1e3
    );

    // Quantized memory: resident bytes and metric deltas vs the exact
    // oracle across seeds.
    let exact_store = mc.new_memory(d.graph.num_nodes());
    let quant_store = mc
        .clone()
        .with_quantized_memory()
        .new_memory(d.graph.num_nodes());
    let (exact_bytes, quant_bytes) = (exact_store.bytes(), quant_store.bytes());
    println!(
        "memory store: f32 {exact_bytes} B, bf16 {quant_bytes} B ({:.2}x smaller)",
        exact_bytes as f64 / quant_bytes as f64
    );

    let quant_mc = mc.clone().with_quantized_memory();
    let mut mrr_deltas = Vec::new();
    let mut mrr_pairs = Vec::new();
    for seed in [3u64, 17, 59] {
        let mut scfg = cfg.clone();
        scfg.seed = seed;
        let exact = train_single(&d, &mc, &scfg);
        let quant = train_single(&d, &quant_mc, &scfg);
        let delta = quant.test_metric - exact.test_metric;
        println!(
            "seed {seed}: exact MRR {:.4}, quantized MRR {:.4} (delta {delta:+.4})",
            exact.test_metric, quant.test_metric
        );
        mrr_deltas.push(delta);
        mrr_pairs.push(format!(
            "{{\"seed\":{seed},\"exact_mrr\":{:.5},\"quantized_mrr\":{:.5},\"delta\":{delta:.5}}}",
            exact.test_metric, quant.test_metric
        ));
    }
    let mean_abs_delta = mrr_deltas.iter().map(|d| d.abs()).sum::<f64>() / mrr_deltas.len() as f64;

    // F1 oracle on the classification task (one seed — the task is a
    // sanity point, not the headline).
    let gd = generators::gdelt(5e-5, 7);
    let class_mc = ModelConfig::compact(gd.edge_features.cols()).with_classes(56);
    let class_quant = class_mc.clone().with_quantized_memory();
    let mut ccfg = cfg.clone();
    ccfg.epochs = 2;
    let class_exact = train_single(&gd, &class_mc, &ccfg);
    let class_q = train_single(&gd, &class_quant, &ccfg);
    let f1_delta = class_q.test_metric - class_exact.test_metric;
    println!(
        "edge class: exact F1 {:.4}, quantized F1 {:.4} (delta {f1_delta:+.4})",
        class_exact.test_metric, class_q.test_metric
    );

    let host_cores = disttgl_bench::host_cores();
    let record = format!(
        "{{\"bench\":\"kernels\",\"host_cores\":{host_cores},\"simd_active\":{simd_available},\
         \"matmul_transpose_b\":[{}],\
         \"gru_scalar_ms\":{:.4},\"gru_simd_ms\":{:.4},\
         \"softmax_scalar_ms\":{:.4},\"softmax_simd_ms\":{:.4},\
         \"gather_scalar_ms\":{:.4},\"gather_simd_ms\":{:.4},\
         \"e2e_scalar_events_per_sec\":{:.1},\"e2e_simd_events_per_sec\":{:.1},\
         \"e2e_speedup\":{e2e_speedup:.4},\"e2e_bit_identical\":{e2e_identical},\
         \"e2e_kernel_share_ms\":{{\"matmul\":{:.3},\"gru\":{:.3},\"softmax\":{:.3},\"gather\":{:.3},\"compute\":{:.3}}},\
         \"store_bytes_f32\":{exact_bytes},\"store_bytes_bf16\":{quant_bytes},\
         \"store_shrink\":{:.4},\
         \"quantized_mrr\":[{}],\"quantized_mean_abs_mrr_delta\":{mean_abs_delta:.5},\
         \"f1_exact\":{:.5},\"f1_quantized\":{:.5},\"f1_delta\":{f1_delta:.5}}}\n",
        shape_records.join(","),
        gru_scalar * 1e3,
        gru_simd * 1e3,
        sm_scalar * 1e3,
        sm_simd * 1e3,
        ga_scalar * 1e3,
        ga_simd * 1e3,
        run_scalar.throughput_events_per_sec,
        run_simd.throughput_events_per_sec,
        run_simd.timing.matmul_secs * 1e3,
        run_simd.timing.gru_secs * 1e3,
        run_simd.timing.softmax_secs * 1e3,
        run_simd.timing.gather_secs * 1e3,
        run_simd.timing.compute_secs * 1e3,
        exact_bytes as f64 / quant_bytes as f64,
        mrr_pairs.join(","),
        class_exact.test_metric,
        class_q.test_metric,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(record.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
