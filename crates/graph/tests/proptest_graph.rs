//! Property-based invariants of the temporal graph structures.

use disttgl_graph::{
    batching, capture, DynamicTCsr, Event, RecentNeighborSampler, TCsr, TemporalAdjacency,
    TemporalGraph,
};
use proptest::prelude::*;

/// Random self-loop-free event logs over a small node universe
/// (the paper's datasets — bipartite interaction graphs, flights,
/// GDELT actor events — contain no self-loops).
fn events(max_nodes: u32, max_events: usize) -> impl Strategy<Value = (u32, Vec<Event>)> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let ev = (0..n, 0..n - 1, 0.0f32..1000.0).prop_map(move |(src, dst_raw, t)| {
            // Shift dst past src to rule out self-loops.
            let dst = if dst_raw >= src { dst_raw + 1 } else { dst_raw };
            Event {
                src,
                dst,
                t,
                eid: 0,
            }
        });
        (Just(n), proptest::collection::vec(ev, 1..max_events))
    })
}

fn build(n: u32, mut evs: Vec<Event>) -> TemporalGraph {
    for (i, e) in evs.iter_mut().enumerate() {
        e.eid = i as u32;
    }
    TemporalGraph::new(n as usize, evs)
}

proptest! {
    #[test]
    fn tcsr_entry_count_is_twice_events((n, evs) in events(16, 60)) {
        let g = build(n, evs);
        let csr = TCsr::build(&g);
        let total: usize = (0..n).map(|v| csr.degree(v)).sum();
        prop_assert_eq!(total, g.num_events() * 2);
    }

    #[test]
    fn tcsr_recent_before_is_sound((n, evs) in events(16, 60), t in 0.0f32..1200.0, k in 1usize..8) {
        let g = build(n, evs);
        let csr = TCsr::build(&g);
        for v in 0..n {
            let recent = csr.recent_before(v, t, k);
            prop_assert!(recent.len() <= k);
            for e in recent {
                prop_assert!(e.t < t);
            }
            // Completeness: count of qualifying events, capped at k.
            let qualifying = csr.neighbors(v).iter().filter(|e| e.t < t).count();
            prop_assert_eq!(recent.len(), qualifying.min(k));
        }
    }

    #[test]
    fn sampler_counts_match_tcsr((n, evs) in events(12, 40), k in 1usize..6) {
        let g = build(n, evs);
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::new(k);
        let t = g.max_time() + 1.0;
        let roots: Vec<u32> = (0..n).collect();
        let times = vec![t; n as usize];
        let block = s.sample(&csr, &roots, &times);
        for v in 0..n as usize {
            prop_assert_eq!(block.counts[v], csr.degree(v as u32).min(k));
        }
    }

    #[test]
    fn captured_never_exceeds_degree_and_bs1_is_exact((n, evs) in events(12, 50), bs in 1usize..20) {
        let g = build(n, evs);
        let cap = capture::captured_events(&g, bs);
        let deg = g.degrees();
        for v in 0..n as usize {
            prop_assert!(cap[v] <= deg[v]);
        }
        let cap1 = capture::captured_events(&g, 1);
        for v in 0..n as usize {
            prop_assert_eq!(cap1[v], deg[v]);
        }
    }

    #[test]
    fn missing_information_bounded((n, evs) in events(12, 50), bs in 1usize..30) {
        let g = build(n, evs);
        let m = capture::missing_information(&g, bs);
        prop_assert!((0.0..1.0).contains(&m));
    }

    #[test]
    fn batches_partition_any_range(start in 0usize..100, len in 0usize..200, bs in 1usize..17) {
        let batches = batching::chronological_batches(start..start + len, bs);
        let total: usize = batches.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total, len);
        let mut cursor = start;
        for b in &batches {
            prop_assert_eq!(b.start, cursor);
            prop_assert!(b.len() <= bs);
            cursor = b.end;
        }
    }

    #[test]
    fn segments_partition_batches(nb in 0usize..100, k in 1usize..9) {
        let segs = batching::time_segments(nb, k);
        prop_assert_eq!(segs.len(), k);
        let total: usize = segs.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, nb);
        // Balanced: sizes differ by at most 1.
        let min = segs.iter().map(|s| s.len()).min().unwrap();
        let max = segs.iter().map(|s| s.len()).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn split_local_partitions_global(start in 0usize..50, len in 0usize..100, i in 1usize..9) {
        let locals = batching::split_local(start..start + len, i);
        prop_assert_eq!(locals.len(), i);
        let total: usize = locals.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total, len);
    }

    /// Append-vs-rebuild parity (the serving-plane contract): feeding
    /// the chronological stream into a `DynamicTCsr` in arbitrary
    /// chunk sizes must reproduce a frozen `TCsr::build` over the
    /// union — identical per-node slices, hence identical
    /// `recent_before` answers for every query.
    #[test]
    fn dynamic_append_equals_rebuild(
        (n, evs) in events(16, 80),
        chunks in proptest::collection::vec(1usize..13, 1..20),
        t in 0.0f32..1200.0,
        k in 1usize..8,
    ) {
        let g = build(n, evs);
        let frozen = TCsr::build(&g);
        let mut live = DynamicTCsr::new(g.num_nodes());
        let mut at = 0usize;
        let mut chunk_iter = chunks.iter().cycle();
        while at < g.num_events() {
            let step = *chunk_iter.next().unwrap();
            let end = (at + step).min(g.num_events());
            live.append_events(&g.events()[at..end]);
            at = end;
        }
        prop_assert_eq!(live.num_events(), g.num_events());
        for v in 0..n {
            prop_assert_eq!(live.neighbors(v), frozen.neighbors(v), "node {}", v);
            prop_assert_eq!(
                live.recent_before(v, t, k),
                frozen.recent_before(v, t, k),
                "query node {} t {} k {}",
                v, t, k
            );
        }
    }

    /// The sampler is index-agnostic: multi-hop frontiers expanded
    /// over the live index equal the frozen index's, block for block.
    #[test]
    fn sampler_agrees_across_adjacency_forms(
        (n, evs) in events(12, 50),
        split in 0usize..50,
        t in 0.0f32..1200.0,
    ) {
        let g = build(n, evs);
        let frozen = TCsr::build(&g);
        let split = split.min(g.num_events());
        let mut live = DynamicTCsr::new(g.num_nodes());
        live.append_events(&g.events()[..split]);
        live.append_events(&g.events()[split..]);
        let sampler = RecentNeighborSampler::with_fanouts(vec![4, 2]);
        let roots: Vec<u32> = (0..n).collect();
        let times = vec![t; n as usize];
        let a = sampler.sample_hops(&frozen, &roots, &times);
        let b = sampler.sample_hops(&live, &roots, &times);
        prop_assert_eq!(a.len(), b.len());
        for (ha, hb) in a.iter().zip(&b) {
            prop_assert_eq!(&ha.nbrs, &hb.nbrs);
            prop_assert_eq!(&ha.eids, &hb.eids);
            prop_assert_eq!(&ha.dts, &hb.dts);
            prop_assert_eq!(&ha.ts, &hb.ts);
            prop_assert_eq!(&ha.counts, &hb.counts);
        }
    }
}
