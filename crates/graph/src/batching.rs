//! Chronological mini-batching and time-segment partitioning.
//!
//! M-TGNN training consumes events in chronological order in fixed-size
//! batches (paper §2.1.1). Memory parallelism additionally partitions
//! the training range into `k` contiguous *time segments*, one per
//! node-memory replica (paper §3.2.3).

use std::ops::Range;

/// Splits `range` (event indices into the sorted log) into fixed-size
/// chronological mini-batches; the last batch may be short.
pub fn chronological_batches(range: Range<usize>, batch_size: usize) -> Vec<Range<usize>> {
    assert!(batch_size > 0, "batch_size must be positive");
    let mut out = Vec::with_capacity((range.len() + batch_size - 1) / batch_size.max(1));
    let mut start = range.start;
    while start < range.end {
        let end = (start + batch_size).min(range.end);
        out.push(start..end);
        start = end;
    }
    out
}

/// Splits a list of mini-batches into `k` contiguous segments of
/// near-equal batch count (segment sizes differ by at most one batch).
/// Segment `s` is what memory replica `s` trains on in iteration-step
/// `s` of the reordered memory-parallel schedule.
pub fn time_segments(num_batches: usize, k: usize) -> Vec<Range<usize>> {
    assert!(k > 0, "k must be positive");
    let base = num_batches / k;
    let extra = num_batches % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for s in 0..k {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits one global batch chronologically into `i` local batches
/// (mini-batch parallelism, §3.2.1): trainer `r` of the i-group gets
/// the `r`-th chronological slice.
pub fn split_local(global: Range<usize>, i: usize) -> Vec<Range<usize>> {
    assert!(i > 0, "i must be positive");
    let n = global.len();
    let base = n / i;
    let extra = n % i;
    let mut out = Vec::with_capacity(i);
    let mut start = global.start;
    for r in 0..i {
        let len = base + usize::from(r < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_range_without_overlap() {
        let batches = chronological_batches(10..47, 8);
        assert_eq!(batches.len(), 5);
        assert_eq!(batches[0], 10..18);
        assert_eq!(batches[4], 42..47);
        let total: usize = batches.iter().map(|r| r.len()).sum();
        assert_eq!(total, 37);
        for w in batches.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn exact_division_has_no_short_batch() {
        let batches = chronological_batches(0..40, 8);
        assert!(batches.iter().all(|r| r.len() == 8));
    }

    #[test]
    fn segments_are_balanced_and_contiguous() {
        let segs = time_segments(10, 3);
        assert_eq!(segs, vec![0..4, 4..7, 7..10]);
        let segs = time_segments(9, 3);
        assert!(segs.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn segments_handle_fewer_batches_than_k() {
        let segs = time_segments(2, 4);
        assert_eq!(segs.len(), 4);
        let total: usize = segs.iter().map(|s| s.len()).sum();
        assert_eq!(total, 2);
        assert!(segs[2].is_empty() && segs[3].is_empty());
    }

    #[test]
    fn split_local_is_chronological_partition() {
        let locals = split_local(100..110, 4);
        assert_eq!(locals, vec![100..103, 103..106, 106..108, 108..110]);
        // Earlier trainer ranks get earlier events — the paper splits
        // global batches chronologically across the i-group.
        for w in locals.windows(2) {
            assert!(w[0].end == w[1].start);
        }
    }

    #[test]
    fn empty_range_yields_no_batches() {
        assert!(chronological_batches(5..5, 4).is_empty());
    }
}
