//! # disttgl-graph
//!
//! Temporal graph storage and sampling for the DistTGL reproduction.
//!
//! A dynamic graph is a time-ordered series of events
//! `{(u, v, e_uv, t)}` (paper §2.1). This crate provides:
//!
//! * [`Event`] / [`TemporalGraph`] — the event log plus a **T-CSR**
//!   index (per-node, time-sorted adjacency) for O(log d + k) queries
//!   of the *k most recent neighbors before a timestamp*, the
//!   supporting-node query of TGN-attn; [`DynamicTCsr`] is the
//!   appendable form for evolving graphs (online serving), and
//!   [`TemporalAdjacency`] the query trait both forms answer;
//! * [`RecentNeighborSampler`] — the batched most-recent-k sampler;
//! * [`batching`] — chronological fixed-size mini-batching and the
//!   time-segment partitioning used by memory parallelism;
//! * [`capture`] — the captured-events analysis behind Figure 8 and
//!   the planner's batch-size threshold (§3.2.4).

pub mod batching;
pub mod capture;
mod event;
mod sampler;
mod tcsr;

pub use event::{Event, TemporalGraph};
pub use sampler::{NeighborBlock, RecentNeighborSampler};
pub use tcsr::{DynamicTCsr, TCsr, TCsrEntry, TemporalAdjacency};
