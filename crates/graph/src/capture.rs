//! Captured-events analysis (paper Figure 8 and the planner's
//! batch-size threshold, §3.2.4).
//!
//! With batched node-memory updates, `COMB` keeps only the most recent
//! mail per node per batch (TGN-attn), so a node interacting `m` times
//! inside one batch contributes only **one** memory update — `m − 1`
//! events are lost. The number of *captured* events for a node is the
//! number of batches in which it appears at least once. Larger batches
//! capture fewer events, and high-degree nodes lose the most — exactly
//! the curves of Figure 8.

use crate::event::TemporalGraph;

/// Per-node captured-event counts when training with `batch_size`:
/// entry `v` is the number of mini-batches in which node `v` occurs as
/// an endpoint (= number of memory updates node `v` receives).
pub fn captured_events(graph: &TemporalGraph, batch_size: usize) -> Vec<u32> {
    assert!(batch_size > 0, "batch_size must be positive");
    let n = graph.num_nodes();
    let mut captured = vec![0u32; n];
    // last_batch_seen[v] = 1-based batch index of v's last occurrence.
    let mut last_batch_seen = vec![0u32; n];
    for (i, e) in graph.events().iter().enumerate() {
        let batch = (i / batch_size) as u32 + 1;
        for node in [e.src as usize, e.dst as usize] {
            if last_batch_seen[node] != batch {
                last_batch_seen[node] = batch;
                captured[node] += 1;
            }
        }
    }
    captured
}

/// Fraction of events whose mails are *lost* to `COMB` batching:
/// `1 − Σ captured / Σ degree`, in `[0, 1)`.
pub fn missing_information(graph: &TemporalGraph, batch_size: usize) -> f64 {
    let captured: u64 = captured_events(graph, batch_size)
        .iter()
        .map(|&c| c as u64)
        .sum();
    let total: u64 = graph.degrees().iter().map(|&d| d as u64).sum();
    if total == 0 {
        return 0.0;
    }
    1.0 - captured as f64 / total as f64
}

/// Missing-information fraction restricted to the `top_frac` highest-
/// degree nodes. The paper suggests a *stricter* threshold on
/// high-degree nodes for applications where high-frequency information
/// is crucial (§3.2.4).
pub fn missing_information_high_degree(
    graph: &TemporalGraph,
    batch_size: usize,
    top_frac: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&top_frac));
    let captured = captured_events(graph, batch_size);
    let degrees = graph.degrees();
    let mut order: Vec<usize> = (0..graph.num_nodes()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(degrees[v]));
    let take = ((graph.num_nodes() as f64 * top_frac).ceil() as usize).max(1);
    let (mut cap, mut tot) = (0u64, 0u64);
    for &v in order.iter().take(take.min(order.len())) {
        cap += captured[v] as u64;
        tot += degrees[v] as u64;
    }
    if tot == 0 {
        0.0
    } else {
        1.0 - cap as f64 / tot as f64
    }
}

/// Finds the largest batch size among `candidates` whose
/// missing-information fraction stays within `threshold` — the
/// "reversely find out the largest batch size" step of the planner.
/// Returns the smallest candidate if none qualifies.
pub fn max_batch_size_for_threshold(
    graph: &TemporalGraph,
    threshold: f64,
    candidates: &[usize],
) -> usize {
    assert!(
        !candidates.is_empty(),
        "need at least one candidate batch size"
    );
    let mut sorted = candidates.to_vec();
    sorted.sort_unstable();
    let mut best = sorted[0];
    for &bs in &sorted {
        if missing_information(graph, bs) <= threshold {
            best = bs;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(src: u32, dst: u32, t: f32, eid: u32) -> Event {
        Event { src, dst, t, eid }
    }

    /// A hub node touching every event plus leaf nodes touched once.
    fn hub_graph(events_n: usize) -> TemporalGraph {
        let events = (0..events_n)
            .map(|i| ev(0, 1 + i as u32, i as f32, i as u32))
            .collect();
        TemporalGraph::new(events_n + 1, events)
    }

    #[test]
    fn batch_size_one_captures_everything() {
        let g = hub_graph(10);
        let cap = captured_events(&g, 1);
        assert_eq!(cap[0], 10);
        assert!(cap[1..].iter().all(|&c| c == 1));
        assert_eq!(missing_information(&g, 1), 0.0);
    }

    #[test]
    fn hub_node_loses_events_as_batch_grows() {
        let g = hub_graph(12);
        // bs = 4 → hub appears in 3 batches.
        assert_eq!(captured_events(&g, 4)[0], 3);
        // bs = 12 → 1 batch.
        assert_eq!(captured_events(&g, 12)[0], 1);
        // Leaves are unaffected (one event each).
        assert!(captured_events(&g, 12)[1..].iter().all(|&c| c == 1));
    }

    #[test]
    fn missing_information_monotone_in_batch_size() {
        let g = hub_graph(32);
        let m1 = missing_information(&g, 1);
        let m4 = missing_information(&g, 4);
        let m16 = missing_information(&g, 16);
        let m32 = missing_information(&g, 32);
        assert!(m1 <= m4 && m4 <= m16 && m16 <= m32);
        assert!(m32 > 0.0);
    }

    #[test]
    fn high_degree_nodes_lose_more() {
        let g = hub_graph(32);
        let all = missing_information(&g, 8);
        // Top node (the hub) only.
        let top = missing_information_high_degree(&g, 8, 1.0 / 33.0);
        assert!(top > all, "hub missing {} vs overall {}", top, all);
    }

    #[test]
    fn planner_picks_largest_batch_within_threshold() {
        let g = hub_graph(64);
        let candidates = [1, 2, 4, 8, 16, 32, 64];
        // Very strict threshold → smallest batch.
        assert_eq!(max_batch_size_for_threshold(&g, 0.0, &candidates), 1);
        // Fully permissive → largest batch.
        assert_eq!(max_batch_size_for_threshold(&g, 1.0, &candidates), 64);
        // Mid threshold is monotone between the extremes.
        let mid = max_batch_size_for_threshold(&g, 0.2, &candidates);
        assert!((1..=64).contains(&mid));
    }

    #[test]
    fn self_loop_counts_one_update_per_batch() {
        // A self-loop generates two mails for the same node in one
        // event; COMB keeps one, so captured < degree even at bs = 1.
        let g = TemporalGraph::new(1, vec![ev(0, 0, 1.0, 0)]);
        assert_eq!(captured_events(&g, 1), vec![1]);
        assert_eq!(g.degrees(), vec![2]);
    }

    #[test]
    fn captured_counts_sum_bounded_by_degree() {
        let g = hub_graph(20);
        let cap = captured_events(&g, 5);
        for (c, d) in cap.iter().zip(g.degrees()) {
            assert!(*c <= d);
        }
    }
}
