//! T-CSR: time-sorted compressed sparse row adjacency — frozen and
//! appendable forms.
//!
//! The supporting-node query of TGN-attn — "the k most recent neighbors
//! of v strictly before time t" — needs per-node adjacency sorted by
//! time. [`TCsr`] stores every (undirected) incidence once per endpoint
//! in CSR layout with each node's slice ascending in time, so the query
//! is one binary search plus a k-element tail walk.
//!
//! [`DynamicTCsr`] is the **streaming** form: the same per-node
//! time-sorted slices, but growable — new chronological events extend
//! each endpoint's slice at the tail in O(1) amortized, which is what
//! the online serving plane (`disttgl_core::serve`) ingests live
//! traffic into. Both forms answer queries through the
//! [`TemporalAdjacency`] trait, and the appendable form is pinned
//! **rebuild-equal**: after any chronological append sequence its
//! per-node slices (and hence every `recent_before` answer) are
//! identical to a fresh [`TCsr::build`] over the union of the events.

use crate::event::{Event, TemporalGraph};

/// One adjacency entry: the opposite endpoint, the event time, and the
/// event id (for edge features and mail lookup).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TCsrEntry {
    /// Opposite endpoint of the edge.
    pub nbr: u32,
    /// Event timestamp.
    pub t: f32,
    /// Event id.
    pub eid: u32,
}

/// Read interface over per-node, time-ascending adjacency — the one
/// contract the neighbor sampler (and everything above it) needs.
/// Implemented by the frozen [`TCsr`] (training/offline evaluation)
/// and the growable [`DynamicTCsr`] (online serving); `Send + Sync`
/// so either form can sit behind the prefetch worker's shared handle.
pub trait TemporalAdjacency: Send + Sync {
    /// Number of nodes indexed.
    fn num_nodes(&self) -> usize;

    /// Full (time-ascending) adjacency slice of `node`.
    fn neighbors(&self, node: u32) -> &[TCsrEntry];

    /// Degree of `node` over the whole log.
    fn degree(&self, node: u32) -> usize {
        self.neighbors(node).len()
    }

    /// The most recent `k` incidences of `node` strictly before `t`,
    /// as a time-ascending slice (the most recent entry is last).
    /// Returns fewer than `k` if the node has fewer qualifying events.
    fn recent_before(&self, node: u32, t: f32, k: usize) -> &[TCsrEntry] {
        let adj = self.neighbors(node);
        // partition_point: first index with entry.t >= t.
        let end = adj.partition_point(|e| e.t < t);
        let start = end.saturating_sub(k);
        &adj[start..end]
    }
}

/// Time-sorted CSR index over a [`TemporalGraph`].
#[derive(Clone, Debug)]
pub struct TCsr {
    indptr: Vec<usize>,
    entries: Vec<TCsrEntry>,
}

impl TCsr {
    /// Builds the index in O(|E|) after the graph's own sort: events
    /// are already chronological, so two counting passes produce
    /// per-node time-sorted slices without re-sorting.
    pub fn build(graph: &TemporalGraph) -> Self {
        let n = graph.num_nodes();
        let mut counts = vec![0usize; n + 1];
        for e in graph.events() {
            counts[e.src as usize + 1] += 1;
            counts[e.dst as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![
            TCsrEntry {
                nbr: 0,
                t: 0.0,
                eid: 0
            };
            graph.num_events() * 2
        ];
        for e in graph.events() {
            let s = e.src as usize;
            entries[cursor[s]] = TCsrEntry {
                nbr: e.dst,
                t: e.t,
                eid: e.eid,
            };
            cursor[s] += 1;
            let d = e.dst as usize;
            entries[cursor[d]] = TCsrEntry {
                nbr: e.src,
                t: e.t,
                eid: e.eid,
            };
            cursor[d] += 1;
        }
        Self { indptr, entries }
    }

    /// Number of nodes indexed.
    pub fn num_nodes(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Full (time-ascending) adjacency slice of `node`.
    pub fn neighbors(&self, node: u32) -> &[TCsrEntry] {
        &self.entries[self.indptr[node as usize]..self.indptr[node as usize + 1]]
    }

    /// Degree of `node` over the whole log.
    pub fn degree(&self, node: u32) -> usize {
        self.indptr[node as usize + 1] - self.indptr[node as usize]
    }

    /// The most recent `k` incidences of `node` strictly before `t`,
    /// as a time-ascending slice (the most recent entry is last).
    /// Returns fewer than `k` if the node has fewer qualifying events.
    pub fn recent_before(&self, node: u32, t: f32, k: usize) -> &[TCsrEntry] {
        let adj = self.neighbors(node);
        // partition_point: first index with entry.t >= t.
        let end = adj.partition_point(|e| e.t < t);
        let start = end.saturating_sub(k);
        &adj[start..end]
    }
}

impl TemporalAdjacency for TCsr {
    fn num_nodes(&self) -> usize {
        TCsr::num_nodes(self)
    }
    fn neighbors(&self, node: u32) -> &[TCsrEntry] {
        TCsr::neighbors(self, node)
    }
    fn degree(&self, node: u32) -> usize {
        TCsr::degree(self, node)
    }
    fn recent_before(&self, node: u32, t: f32, k: usize) -> &[TCsrEntry] {
        TCsr::recent_before(self, node, t, k)
    }
}

/// Appendable time-sorted adjacency for an **evolving** graph.
///
/// Per-node slices are owned vectors instead of one flat CSR block, so
/// a new chronological event extends both endpoints' slices at the
/// tail in O(1) amortized — no rebuild, no shifting. Queries go
/// through [`TemporalAdjacency`], same as the frozen [`TCsr`].
///
/// # Rebuild parity
///
/// Appends must arrive in the event log's chronological order
/// (non-decreasing `t` across every call — enforced). Under that
/// contract each per-node slice grows exactly as [`TCsr::build`]'s
/// counting passes would lay it out, entry for entry (equal-timestamp
/// events keep their log order at both endpoints), so every
/// [`TemporalAdjacency::recent_before`] answer matches a fresh build
/// over the union of all events ever appended — the property the
/// serving plane's live sampling relies on, pinned by the append-vs-
/// rebuild proptests in `tests/proptest_graph.rs`.
#[derive(Clone, Debug)]
pub struct DynamicTCsr {
    adj: Vec<Vec<TCsrEntry>>,
    num_events: usize,
    last_t: f32,
}

impl DynamicTCsr {
    /// An empty adjacency over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            adj: vec![Vec::new(); num_nodes],
            num_events: 0,
            last_t: f32::NEG_INFINITY,
        }
    }

    /// Seeds the adjacency from an existing event log (the serving
    /// session's "warm start from the training history" path).
    pub fn from_graph(graph: &TemporalGraph) -> Self {
        let mut d = Self::new(graph.num_nodes());
        d.append_events(graph.events());
        d
    }

    /// Extends every endpoint's slice with `events`, which must be
    /// chronological: non-decreasing `t` within the slice and no
    /// earlier than anything already appended. Returns the number of
    /// events appended.
    ///
    /// # Panics
    /// Panics if an event is out of chronological order or names an
    /// endpoint outside the node range.
    pub fn append_events(&mut self, events: &[Event]) -> usize {
        let n = self.adj.len();
        for e in events {
            assert!(
                (e.src as usize) < n && (e.dst as usize) < n,
                "append_events: endpoint out of range: {:?} (num_nodes {})",
                e,
                n
            );
            assert!(
                e.t >= self.last_t,
                "append_events: event {:?} precedes the stream head t = {}",
                e,
                self.last_t
            );
            self.adj[e.src as usize].push(TCsrEntry {
                nbr: e.dst,
                t: e.t,
                eid: e.eid,
            });
            self.adj[e.dst as usize].push(TCsrEntry {
                nbr: e.src,
                t: e.t,
                eid: e.eid,
            });
            self.last_t = e.t;
        }
        self.num_events += events.len();
        events.len()
    }

    /// Events appended so far.
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Timestamp of the newest appended event (−∞ when empty) — the
    /// stream head new appends must not precede.
    pub fn stream_head(&self) -> f32 {
        self.last_t
    }

    /// Reassembles an adjacency from snapshotted parts — per-node
    /// entry slices (as [`TemporalAdjacency::neighbors`] returns them),
    /// the event count, and the stream head. Used by checkpoint
    /// restore; validates the invariants the append path enforces
    /// incrementally, so a corrupted snapshot is rejected instead of
    /// poisoning later appends.
    pub fn from_parts(
        adj: Vec<Vec<TCsrEntry>>,
        num_events: usize,
        stream_head: f32,
    ) -> Result<Self, String> {
        let mut total = 0usize;
        for (node, slice) in adj.iter().enumerate() {
            total += slice.len();
            for w in slice.windows(2) {
                if w[0].t > w[1].t {
                    return Err(format!("node {node}: adjacency slice not time-sorted"));
                }
            }
            if let Some(last) = slice.last() {
                if last.t > stream_head {
                    return Err(format!(
                        "node {node}: entry at t = {} beyond the stream head t = {}",
                        last.t, stream_head
                    ));
                }
            }
            for e in slice {
                if (e.nbr as usize) >= adj.len() {
                    return Err(format!("node {node}: neighbor {} out of range", e.nbr));
                }
            }
        }
        if total != 2 * num_events {
            return Err(format!(
                "entry count {total} inconsistent with {num_events} events"
            ));
        }
        if num_events == 0 && stream_head != f32::NEG_INFINITY {
            return Err("empty adjacency with a finite stream head".into());
        }
        Ok(Self {
            adj,
            num_events,
            last_t: stream_head,
        })
    }
}

impl TemporalAdjacency for DynamicTCsr {
    fn num_nodes(&self) -> usize {
        self.adj.len()
    }
    fn neighbors(&self, node: u32) -> &[TCsrEntry] {
        &self.adj[node as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: u32, dst: u32, t: f32, eid: u32) -> Event {
        Event { src, dst, t, eid }
    }

    fn sample_graph() -> TemporalGraph {
        TemporalGraph::new(
            4,
            vec![
                ev(0, 1, 1.0, 0),
                ev(0, 2, 2.0, 1),
                ev(1, 2, 3.0, 2),
                ev(0, 1, 4.0, 3),
                ev(3, 0, 5.0, 4),
            ],
        )
    }

    #[test]
    fn per_node_slices_are_time_sorted() {
        let csr = TCsr::build(&sample_graph());
        for node in 0..4 {
            let adj = csr.neighbors(node);
            for w in adj.windows(2) {
                assert!(w[0].t <= w[1].t, "node {} not sorted", node);
            }
        }
    }

    #[test]
    fn degrees_match_graph() {
        let g = sample_graph();
        let csr = TCsr::build(&g);
        let deg = g.degrees();
        for node in 0..4u32 {
            assert_eq!(csr.degree(node), deg[node as usize] as usize);
        }
    }

    #[test]
    fn recent_before_excludes_t_and_later() {
        let csr = TCsr::build(&sample_graph());
        // Node 0 events at t = 1, 2, 4, 5. Query before t = 4 with k = 10.
        let recent = csr.recent_before(0, 4.0, 10);
        let ts: Vec<f32> = recent.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![1.0, 2.0]);
    }

    #[test]
    fn recent_before_takes_most_recent_k() {
        let csr = TCsr::build(&sample_graph());
        let recent = csr.recent_before(0, 6.0, 2);
        let eids: Vec<u32> = recent.iter().map(|e| e.eid).collect();
        // Node 0's events: eid 0 (t1), 1 (t2), 3 (t4), 4 (t5); last two.
        assert_eq!(eids, vec![3, 4]);
    }

    #[test]
    fn isolated_node_has_empty_adjacency() {
        let g = TemporalGraph::new(3, vec![ev(0, 1, 1.0, 0)]);
        let csr = TCsr::build(&g);
        assert!(csr.neighbors(2).is_empty());
        assert!(csr.recent_before(2, 10.0, 5).is_empty());
    }

    #[test]
    fn both_endpoints_indexed() {
        let g = TemporalGraph::new(2, vec![ev(0, 1, 1.0, 9)]);
        let csr = TCsr::build(&g);
        assert_eq!(csr.neighbors(0)[0].nbr, 1);
        assert_eq!(csr.neighbors(1)[0].nbr, 0);
        assert_eq!(csr.neighbors(1)[0].eid, 9);
    }

    /// Appending a chronological stream in pieces must reproduce the
    /// frozen build over the union, slice for slice.
    #[test]
    fn dynamic_append_matches_rebuild() {
        let g = sample_graph();
        let full = TCsr::build(&g);
        let mut dyn_csr = DynamicTCsr::new(g.num_nodes());
        dyn_csr.append_events(&g.events()[0..2]);
        dyn_csr.append_events(&g.events()[2..3]);
        dyn_csr.append_events(&[]);
        dyn_csr.append_events(&g.events()[3..5]);
        assert_eq!(dyn_csr.num_events(), 5);
        assert_eq!(dyn_csr.stream_head(), 5.0);
        for node in 0..4u32 {
            assert_eq!(
                TemporalAdjacency::neighbors(&dyn_csr, node),
                full.neighbors(node),
                "node {node}"
            );
            for (t, k) in [(0.5, 2), (2.0, 1), (4.0, 10), (9.0, 3)] {
                assert_eq!(
                    TemporalAdjacency::recent_before(&dyn_csr, node, t, k),
                    full.recent_before(node, t, k),
                    "node {node} t {t} k {k}"
                );
            }
        }
    }

    #[test]
    fn dynamic_from_graph_equals_build() {
        let g = sample_graph();
        let full = TCsr::build(&g);
        let dyn_csr = DynamicTCsr::from_graph(&g);
        for node in 0..4u32 {
            assert_eq!(
                TemporalAdjacency::neighbors(&dyn_csr, node),
                full.neighbors(node)
            );
            assert_eq!(TemporalAdjacency::degree(&dyn_csr, node), full.degree(node));
        }
    }

    /// Equal-timestamp events keep log order — the same convention the
    /// stable sort gives the frozen build.
    #[test]
    fn dynamic_append_accepts_equal_timestamps() {
        let events = vec![ev(0, 1, 2.0, 0), ev(1, 2, 2.0, 1), ev(0, 2, 2.0, 2)];
        let g = TemporalGraph::new(3, events.clone());
        let full = TCsr::build(&g);
        let mut dyn_csr = DynamicTCsr::new(3);
        for e in &events {
            dyn_csr.append_events(std::slice::from_ref(e));
        }
        for node in 0..3u32 {
            assert_eq!(
                TemporalAdjacency::neighbors(&dyn_csr, node),
                full.neighbors(node)
            );
        }
    }

    /// Snapshot → from_parts round trip preserves every query and
    /// keeps accepting appends at the stream head.
    #[test]
    fn dynamic_from_parts_roundtrips() {
        let g = sample_graph();
        let orig = DynamicTCsr::from_graph(&g);
        let parts: Vec<Vec<TCsrEntry>> = (0..g.num_nodes() as u32)
            .map(|n| TemporalAdjacency::neighbors(&orig, n).to_vec())
            .collect();
        let mut restored =
            DynamicTCsr::from_parts(parts, orig.num_events(), orig.stream_head()).unwrap();
        assert_eq!(restored.num_events(), orig.num_events());
        assert_eq!(restored.stream_head(), orig.stream_head());
        for node in 0..g.num_nodes() as u32 {
            assert_eq!(
                TemporalAdjacency::neighbors(&restored, node),
                TemporalAdjacency::neighbors(&orig, node)
            );
        }
        restored.append_events(&[ev(1, 3, 6.0, 5)]);
        assert_eq!(restored.num_events(), 6);
    }

    #[test]
    fn dynamic_from_parts_rejects_corruption() {
        // Unsorted slice.
        let bad = vec![
            vec![
                TCsrEntry {
                    nbr: 1,
                    t: 2.0,
                    eid: 0,
                },
                TCsrEntry {
                    nbr: 1,
                    t: 1.0,
                    eid: 1,
                },
            ],
            vec![
                TCsrEntry {
                    nbr: 0,
                    t: 1.0,
                    eid: 1,
                },
                TCsrEntry {
                    nbr: 0,
                    t: 2.0,
                    eid: 0,
                },
            ],
        ];
        assert!(DynamicTCsr::from_parts(bad, 2, 2.0).is_err());
        // Entry count inconsistent with the event count.
        let lop = vec![
            vec![TCsrEntry {
                nbr: 1,
                t: 1.0,
                eid: 0,
            }],
            vec![],
        ];
        assert!(DynamicTCsr::from_parts(lop, 1, 1.0).is_err());
        // Entry beyond the claimed stream head.
        let ahead = vec![
            vec![TCsrEntry {
                nbr: 1,
                t: 5.0,
                eid: 0,
            }],
            vec![TCsrEntry {
                nbr: 0,
                t: 5.0,
                eid: 0,
            }],
        ];
        assert!(DynamicTCsr::from_parts(ahead, 1, 4.0).is_err());
        // Neighbor id out of range.
        let oob = vec![
            vec![TCsrEntry {
                nbr: 7,
                t: 1.0,
                eid: 0,
            }],
            vec![TCsrEntry {
                nbr: 0,
                t: 1.0,
                eid: 0,
            }],
        ];
        assert!(DynamicTCsr::from_parts(oob, 1, 1.0).is_err());
        // Empty adjacency must carry the −∞ head.
        assert!(DynamicTCsr::from_parts(vec![vec![], vec![]], 0, 0.0).is_err());
    }

    #[test]
    #[should_panic(expected = "precedes the stream head")]
    fn dynamic_append_rejects_time_regression() {
        let mut dyn_csr = DynamicTCsr::new(3);
        dyn_csr.append_events(&[ev(0, 1, 5.0, 0)]);
        dyn_csr.append_events(&[ev(1, 2, 4.0, 1)]);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn dynamic_append_rejects_bad_endpoint() {
        let mut dyn_csr = DynamicTCsr::new(2);
        dyn_csr.append_events(&[ev(0, 7, 1.0, 0)]);
    }
}
