//! T-CSR: time-sorted compressed sparse row adjacency.
//!
//! The supporting-node query of TGN-attn — "the k most recent neighbors
//! of v strictly before time t" — needs per-node adjacency sorted by
//! time. T-CSR stores every (undirected) incidence once per endpoint in
//! CSR layout with each node's slice ascending in time, so the query is
//! one binary search plus a k-element tail walk.

use crate::event::TemporalGraph;

#[cfg(test)]
use crate::event::Event;

/// One adjacency entry: the opposite endpoint, the event time, and the
/// event id (for edge features and mail lookup).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TCsrEntry {
    /// Opposite endpoint of the edge.
    pub nbr: u32,
    /// Event timestamp.
    pub t: f32,
    /// Event id.
    pub eid: u32,
}

/// Time-sorted CSR index over a [`TemporalGraph`].
#[derive(Clone, Debug)]
pub struct TCsr {
    indptr: Vec<usize>,
    entries: Vec<TCsrEntry>,
}

impl TCsr {
    /// Builds the index in O(|E|) after the graph's own sort: events
    /// are already chronological, so two counting passes produce
    /// per-node time-sorted slices without re-sorting.
    pub fn build(graph: &TemporalGraph) -> Self {
        let n = graph.num_nodes();
        let mut counts = vec![0usize; n + 1];
        for e in graph.events() {
            counts[e.src as usize + 1] += 1;
            counts[e.dst as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![
            TCsrEntry {
                nbr: 0,
                t: 0.0,
                eid: 0
            };
            graph.num_events() * 2
        ];
        for e in graph.events() {
            let s = e.src as usize;
            entries[cursor[s]] = TCsrEntry {
                nbr: e.dst,
                t: e.t,
                eid: e.eid,
            };
            cursor[s] += 1;
            let d = e.dst as usize;
            entries[cursor[d]] = TCsrEntry {
                nbr: e.src,
                t: e.t,
                eid: e.eid,
            };
            cursor[d] += 1;
        }
        Self { indptr, entries }
    }

    /// Number of nodes indexed.
    pub fn num_nodes(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Full (time-ascending) adjacency slice of `node`.
    pub fn neighbors(&self, node: u32) -> &[TCsrEntry] {
        &self.entries[self.indptr[node as usize]..self.indptr[node as usize + 1]]
    }

    /// Degree of `node` over the whole log.
    pub fn degree(&self, node: u32) -> usize {
        self.indptr[node as usize + 1] - self.indptr[node as usize]
    }

    /// The most recent `k` incidences of `node` strictly before `t`,
    /// most recent first. Returns fewer than `k` if the node has fewer
    /// qualifying events.
    pub fn recent_before(&self, node: u32, t: f32, k: usize) -> &[TCsrEntry] {
        let adj = self.neighbors(node);
        // partition_point: first index with entry.t >= t.
        let end = adj.partition_point(|e| e.t < t);
        let start = end.saturating_sub(k);
        &adj[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: u32, dst: u32, t: f32, eid: u32) -> Event {
        Event { src, dst, t, eid }
    }

    fn sample_graph() -> TemporalGraph {
        TemporalGraph::new(
            4,
            vec![
                ev(0, 1, 1.0, 0),
                ev(0, 2, 2.0, 1),
                ev(1, 2, 3.0, 2),
                ev(0, 1, 4.0, 3),
                ev(3, 0, 5.0, 4),
            ],
        )
    }

    #[test]
    fn per_node_slices_are_time_sorted() {
        let csr = TCsr::build(&sample_graph());
        for node in 0..4 {
            let adj = csr.neighbors(node);
            for w in adj.windows(2) {
                assert!(w[0].t <= w[1].t, "node {} not sorted", node);
            }
        }
    }

    #[test]
    fn degrees_match_graph() {
        let g = sample_graph();
        let csr = TCsr::build(&g);
        let deg = g.degrees();
        for node in 0..4u32 {
            assert_eq!(csr.degree(node), deg[node as usize] as usize);
        }
    }

    #[test]
    fn recent_before_excludes_t_and_later() {
        let csr = TCsr::build(&sample_graph());
        // Node 0 events at t = 1, 2, 4, 5. Query before t = 4 with k = 10.
        let recent = csr.recent_before(0, 4.0, 10);
        let ts: Vec<f32> = recent.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![1.0, 2.0]);
    }

    #[test]
    fn recent_before_takes_most_recent_k() {
        let csr = TCsr::build(&sample_graph());
        let recent = csr.recent_before(0, 6.0, 2);
        let eids: Vec<u32> = recent.iter().map(|e| e.eid).collect();
        // Node 0's events: eid 0 (t1), 1 (t2), 3 (t4), 4 (t5); last two.
        assert_eq!(eids, vec![3, 4]);
    }

    #[test]
    fn isolated_node_has_empty_adjacency() {
        let g = TemporalGraph::new(3, vec![ev(0, 1, 1.0, 0)]);
        let csr = TCsr::build(&g);
        assert!(csr.neighbors(2).is_empty());
        assert!(csr.recent_before(2, 10.0, 5).is_empty());
    }

    #[test]
    fn both_endpoints_indexed() {
        let g = TemporalGraph::new(2, vec![ev(0, 1, 1.0, 9)]);
        let csr = TCsr::build(&g);
        assert_eq!(csr.neighbors(0)[0].nbr, 1);
        assert_eq!(csr.neighbors(1)[0].nbr, 0);
        assert_eq!(csr.neighbors(1)[0].eid, 9);
    }
}
