//! Batched most-recent-k neighbor sampling.
//!
//! TGN-attn (and hence DistTGL) uses the **k most recent neighbors**
//! as supporting nodes for the one-layer temporal attention. The
//! sampler turns a batch of (root, timestamp) queries into a padded
//! [`NeighborBlock`] laid out for `disttgl_nn::TemporalAttention`:
//! root-major, `k` fixed slots per root, valid slots first.

use crate::tcsr::TCsr;

/// Padded neighbor block for a batch of roots.
///
/// Slot `(b, s)` maps to flat index `b * k + s`. For root `b`, slots
/// `0..counts[b]` are valid (most recent **last**, i.e. ascending time,
/// which keeps Δt ordering natural); the rest are zero-padded.
#[derive(Clone, Debug, Default)]
pub struct NeighborBlock {
    /// Fixed slot count per root (`k`).
    pub k: usize,
    /// Neighbor node ids, `roots.len() * k`.
    pub nbrs: Vec<u32>,
    /// Edge/event ids aligned with `nbrs`.
    pub eids: Vec<u32>,
    /// Time deltas `t_query − t_edge` aligned with `nbrs` (≥ 0).
    pub dts: Vec<f32>,
    /// Valid slot count per root.
    pub counts: Vec<usize>,
}

impl NeighborBlock {
    /// Number of roots in the block.
    pub fn num_roots(&self) -> usize {
        self.counts.len()
    }

    /// Flat slot index helper.
    #[inline]
    pub fn slot(&self, root_idx: usize, s: usize) -> usize {
        root_idx * self.k + s
    }
}

/// Most-recent-k sampler over a [`TCsr`] index.
#[derive(Clone, Debug)]
pub struct RecentNeighborSampler {
    k: usize,
}

impl RecentNeighborSampler {
    /// Creates a sampler returning up to `k` supporting neighbors
    /// (the paper uses k = 10).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "sampler needs k >= 1");
        Self { k }
    }

    /// Supporting-neighbor slot count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Samples supporting neighbors for each `(root, t)` query:
    /// the k most recent incidences strictly before `t`.
    pub fn sample(&self, csr: &TCsr, roots: &[u32], times: &[f32]) -> NeighborBlock {
        assert_eq!(roots.len(), times.len(), "sampler: roots/times length");
        let b = roots.len();
        let k = self.k;
        let mut block = NeighborBlock {
            k,
            nbrs: vec![0; b * k],
            eids: vec![0; b * k],
            dts: vec![0.0; b * k],
            counts: vec![0; b],
        };
        for (bi, (&root, &t)) in roots.iter().zip(times).enumerate() {
            let recent = csr.recent_before(root, t, k);
            block.counts[bi] = recent.len();
            for (s, entry) in recent.iter().enumerate() {
                let idx = bi * k + s;
                block.nbrs[idx] = entry.nbr;
                block.eids[idx] = entry.eid;
                block.dts[idx] = t - entry.t;
            }
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TemporalGraph};

    fn ev(src: u32, dst: u32, t: f32, eid: u32) -> Event {
        Event { src, dst, t, eid }
    }

    fn graph() -> TemporalGraph {
        TemporalGraph::new(
            5,
            vec![
                ev(0, 1, 1.0, 0),
                ev(0, 2, 2.0, 1),
                ev(0, 3, 3.0, 2),
                ev(0, 4, 4.0, 3),
                ev(1, 2, 5.0, 4),
            ],
        )
    }

    #[test]
    fn sample_shapes_and_padding() {
        let g = graph();
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::new(3);
        let block = s.sample(&csr, &[0, 4], &[10.0, 10.0]);
        assert_eq!(block.num_roots(), 2);
        assert_eq!(block.nbrs.len(), 6);
        // Node 0 has 4 events; capped at k = 3.
        assert_eq!(block.counts[0], 3);
        // Node 4 has 1 event.
        assert_eq!(block.counts[1], 1);
        // Padding slots stay zero.
        assert_eq!(block.nbrs[block.slot(1, 1)], 0);
        assert_eq!(block.dts[block.slot(1, 2)], 0.0);
    }

    #[test]
    fn takes_most_recent_before_query_time() {
        let g = graph();
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::new(2);
        // Query node 0 at t = 3.5: events at 1, 2, 3 qualify; keep last 2.
        let block = s.sample(&csr, &[0], &[3.5]);
        let eids: Vec<u32> = (0..block.counts[0]).map(|i| block.eids[i]).collect();
        assert_eq!(eids, vec![1, 2]);
        // Deltas are query minus event times.
        assert!((block.dts[0] - 1.5).abs() < 1e-6);
        assert!((block.dts[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn deltas_are_non_negative_and_ascending_in_slot_time() {
        let g = graph();
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::new(4);
        let block = s.sample(&csr, &[0], &[4.5]);
        for i in 0..block.counts[0] {
            assert!(block.dts[i] >= 0.0);
        }
        // Slots ascend in event time, so deltas descend.
        for i in 1..block.counts[0] {
            assert!(block.dts[i] <= block.dts[i - 1]);
        }
    }

    #[test]
    fn event_at_query_time_is_excluded() {
        // The current event must not support itself (information leak).
        let g = graph();
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::new(5);
        let block = s.sample(&csr, &[0], &[3.0]);
        assert_eq!(block.counts[0], 2); // only t = 1, 2
    }
}
