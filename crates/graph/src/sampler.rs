//! Batched most-recent-k neighbor sampling, one hop or many.
//!
//! TGN-attn (and hence DistTGL) uses the **k most recent neighbors**
//! as supporting nodes for temporal attention. The sampler turns a
//! batch of (root, timestamp) queries into a padded [`NeighborBlock`]
//! laid out for `disttgl_nn::TemporalAttention`: root-major, `k` fixed
//! slots per root, valid slots first.
//!
//! # Multi-hop frontiers
//!
//! An `L`-layer embedding stack needs `L` hops of supporting nodes:
//! hop `d + 1` expands the *slots* of hop `d` into their own
//! most-recent-`k` neighborhoods. [`RecentNeighborSampler::sample_hops`]
//! returns one padded block per hop; hop `d`'s roots are exactly hop
//! `d − 1`'s flattened slots (frontier sizes multiply:
//! `R, R·k₀, R·k₀·k₁, …`). Two temporal rules keep the expansion
//! leak-free:
//!
//! * a hop-`d` slot reached through an edge at time `tₑ` is expanded
//!   at query time `tₑ` (strictly-before semantics recurse on the
//!   *edge* time, never the root time), read back via
//!   [`NeighborBlock::ts`];
//! * **padded slots never expand**: a slot `s ≥ counts[b]` is not a
//!   real node (its stored id 0 is a sentinel), so its hop-`d + 1`
//!   row is forced to `counts = 0` without touching the T-CSR.

use crate::tcsr::TemporalAdjacency;

/// Padded neighbor block for a batch of roots.
///
/// Slot `(b, s)` maps to flat index `b * k + s`. For root `b`, slots
/// `0..counts[b]` are valid (most recent **last**, i.e. ascending time,
/// which keeps Δt ordering natural); the rest are zero-padded.
#[derive(Clone, Debug, Default)]
pub struct NeighborBlock {
    /// Fixed slot count per root (`k`).
    pub k: usize,
    /// Neighbor node ids, `roots.len() * k`.
    pub nbrs: Vec<u32>,
    /// Edge/event ids aligned with `nbrs`.
    pub eids: Vec<u32>,
    /// Time deltas `t_query − t_edge` aligned with `nbrs` (≥ 0).
    pub dts: Vec<f32>,
    /// Absolute edge times aligned with `nbrs` (0 for padded slots) —
    /// the query times of the *next* hop's expansion.
    pub ts: Vec<f32>,
    /// Valid slot count per root.
    pub counts: Vec<usize>,
}

impl NeighborBlock {
    /// Number of roots in the block.
    pub fn num_roots(&self) -> usize {
        self.counts.len()
    }

    /// Number of slots (`num_roots · k`) — the next hop's frontier
    /// size, padded slots included.
    pub fn num_slots(&self) -> usize {
        self.nbrs.len()
    }

    /// Flat slot index helper.
    #[inline]
    pub fn slot(&self, root_idx: usize, s: usize) -> usize {
        root_idx * self.k + s
    }

    /// True if flat slot `idx` holds a real sampled neighbor (as
    /// opposed to padding).
    #[inline]
    pub fn is_valid_slot(&self, idx: usize) -> bool {
        self.k > 0 && idx % self.k < self.counts[idx / self.k]
    }
}

/// Most-recent-k sampler over any [`TemporalAdjacency`] index (the
/// frozen [`crate::TCsr`] or the appendable [`crate::DynamicTCsr`]),
/// one fanout per hop.
#[derive(Clone, Debug)]
pub struct RecentNeighborSampler {
    fanouts: Vec<usize>,
}

impl RecentNeighborSampler {
    /// Creates a one-hop sampler returning up to `k` supporting
    /// neighbors (the paper uses k = 10).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "sampler needs k >= 1");
        Self { fanouts: vec![k] }
    }

    /// Creates a multi-hop sampler with one fanout per hop
    /// (`fanouts[d]` slots per hop-`d` frontier node). A fanout of 0
    /// yields an empty hop — legal for index round-trip tests, though
    /// the model requires every fanout ≥ 1.
    pub fn with_fanouts(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "sampler needs at least one hop");
        Self { fanouts }
    }

    /// First-hop supporting-neighbor slot count.
    pub fn k(&self) -> usize {
        self.fanouts[0]
    }

    /// Per-hop fanouts.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// Number of hops sampled by [`RecentNeighborSampler::sample_hops`].
    pub fn num_hops(&self) -> usize {
        self.fanouts.len()
    }

    /// Samples one hop into a caller-owned block, reusing its buffers
    /// (clear + resize keeps capacity — the serving plane's per-reader
    /// scratch path). For each *valid* `(root, t)` query, the `k` most
    /// recent incidences strictly before `t`; queries whose `parent`
    /// slot is padding keep `counts = 0` — validity is read straight
    /// off the parent block, so no per-hop validity vector is
    /// materialized.
    fn sample_hop_into(
        &self,
        adj: &dyn TemporalAdjacency,
        roots: &[u32],
        times: &[f32],
        parent: Option<&NeighborBlock>,
        k: usize,
        block: &mut NeighborBlock,
    ) {
        assert_eq!(roots.len(), times.len(), "sampler: roots/times length");
        let b = roots.len();
        block.k = k;
        block.nbrs.clear();
        block.nbrs.resize(b * k, 0);
        block.eids.clear();
        block.eids.resize(b * k, 0);
        block.dts.clear();
        block.dts.resize(b * k, 0.0);
        block.ts.clear();
        block.ts.resize(b * k, 0.0);
        block.counts.clear();
        block.counts.resize(b, 0);
        if k == 0 {
            return;
        }
        for (bi, (&root, &t)) in roots.iter().zip(times).enumerate() {
            if let Some(p) = parent {
                if !p.is_valid_slot(bi) {
                    continue; // padded parent slot: never touch the T-CSR
                }
            }
            let recent = adj.recent_before(root, t, k);
            block.counts[bi] = recent.len();
            for (s, entry) in recent.iter().enumerate() {
                let idx = bi * k + s;
                block.nbrs[idx] = entry.nbr;
                block.eids[idx] = entry.eid;
                block.dts[idx] = t - entry.t;
                block.ts[idx] = entry.t;
            }
        }
    }

    /// Samples supporting neighbors for each `(root, t)` query with
    /// the first hop's fanout — the single-layer entry point, kept as
    /// the hop-0 building block of [`RecentNeighborSampler::sample_hops`].
    pub fn sample(
        &self,
        adj: &dyn TemporalAdjacency,
        roots: &[u32],
        times: &[f32],
    ) -> NeighborBlock {
        let mut block = NeighborBlock::default();
        self.sample_hop_into(adj, roots, times, None, self.fanouts[0], &mut block);
        block
    }

    /// Recursively expands the full multi-hop frontier of `(root, t)`
    /// queries: `hops[0]` holds the roots' neighbors, `hops[d]` the
    /// neighbors of `hops[d − 1]`'s slots, queried at their edge times
    /// ([`NeighborBlock::ts`]). Padded slots of hop `d − 1` produce
    /// `counts = 0` rows at hop `d` (no sentinel-node sampling), so
    /// the padding — and the attention masking it drives — composes
    /// hop over hop.
    pub fn sample_hops(
        &self,
        adj: &dyn TemporalAdjacency,
        roots: &[u32],
        times: &[f32],
    ) -> Vec<NeighborBlock> {
        let mut hops = Vec::with_capacity(self.fanouts.len());
        self.sample_hops_into(adj, roots, times, &mut hops);
        hops
    }

    /// [`RecentNeighborSampler::sample_hops`] into caller-owned
    /// blocks: each hop's vectors are cleared and refilled in place,
    /// so a hot loop that keeps one `Vec<NeighborBlock>` alive reaches
    /// steady state with zero sampling allocations.
    pub fn sample_hops_into(
        &self,
        adj: &dyn TemporalAdjacency,
        roots: &[u32],
        times: &[f32],
        hops: &mut Vec<NeighborBlock>,
    ) {
        hops.truncate(self.fanouts.len());
        hops.resize_with(self.fanouts.len(), NeighborBlock::default);
        for (d, &k) in self.fanouts.iter().enumerate() {
            let (prev, rest) = hops.split_at_mut(d);
            let block = &mut rest[0];
            match prev.last() {
                None => self.sample_hop_into(adj, roots, times, None, k, block),
                Some(parent) => {
                    self.sample_hop_into(adj, &parent.nbrs, &parent.ts, Some(parent), k, block)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TemporalGraph};
    use crate::tcsr::TCsr;

    fn ev(src: u32, dst: u32, t: f32, eid: u32) -> Event {
        Event { src, dst, t, eid }
    }

    fn graph() -> TemporalGraph {
        TemporalGraph::new(
            5,
            vec![
                ev(0, 1, 1.0, 0),
                ev(0, 2, 2.0, 1),
                ev(0, 3, 3.0, 2),
                ev(0, 4, 4.0, 3),
                ev(1, 2, 5.0, 4),
            ],
        )
    }

    #[test]
    fn sample_shapes_and_padding() {
        let g = graph();
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::new(3);
        let block = s.sample(&csr, &[0, 4], &[10.0, 10.0]);
        assert_eq!(block.num_roots(), 2);
        assert_eq!(block.nbrs.len(), 6);
        // Node 0 has 4 events; capped at k = 3.
        assert_eq!(block.counts[0], 3);
        // Node 4 has 1 event.
        assert_eq!(block.counts[1], 1);
        // Padding slots stay zero.
        assert_eq!(block.nbrs[block.slot(1, 1)], 0);
        assert_eq!(block.dts[block.slot(1, 2)], 0.0);
        assert_eq!(block.ts[block.slot(1, 2)], 0.0);
        assert!(block.is_valid_slot(block.slot(1, 0)));
        assert!(!block.is_valid_slot(block.slot(1, 1)));
    }

    #[test]
    fn takes_most_recent_before_query_time() {
        let g = graph();
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::new(2);
        // Query node 0 at t = 3.5: events at 1, 2, 3 qualify; keep last 2.
        let block = s.sample(&csr, &[0], &[3.5]);
        let eids: Vec<u32> = (0..block.counts[0]).map(|i| block.eids[i]).collect();
        assert_eq!(eids, vec![1, 2]);
        // Deltas are query minus event times; `ts` holds the absolutes.
        assert!((block.dts[0] - 1.5).abs() < 1e-6);
        assert!((block.dts[1] - 0.5).abs() < 1e-6);
        assert_eq!(block.ts[0], 2.0);
        assert_eq!(block.ts[1], 3.0);
    }

    #[test]
    fn deltas_are_non_negative_and_ascending_in_slot_time() {
        let g = graph();
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::new(4);
        let block = s.sample(&csr, &[0], &[4.5]);
        for i in 0..block.counts[0] {
            assert!(block.dts[i] >= 0.0);
        }
        // Slots ascend in event time, so deltas descend.
        for i in 1..block.counts[0] {
            assert!(block.dts[i] <= block.dts[i - 1]);
        }
    }

    #[test]
    fn event_at_query_time_is_excluded() {
        // The current event must not support itself (information leak).
        let g = graph();
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::new(5);
        let block = s.sample(&csr, &[0], &[3.0]);
        assert_eq!(block.counts[0], 2); // only t = 1, 2
    }

    #[test]
    fn two_hop_frontier_shapes_multiply() {
        let g = graph();
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::with_fanouts(vec![3, 2]);
        let hops = s.sample_hops(&csr, &[0, 1], &[10.0, 10.0]);
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].num_roots(), 2);
        assert_eq!(hops[0].num_slots(), 6);
        // Hop 1's roots are hop 0's slots, padded ones included.
        assert_eq!(hops[1].num_roots(), 6);
        assert_eq!(hops[1].num_slots(), 12);
    }

    #[test]
    fn hop_two_respects_edge_times() {
        let g = graph();
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::with_fanouts(vec![2, 3]);
        let hops = s.sample_hops(&csr, &[1], &[10.0]);
        // Node 1's 2 most recent incidences: (0, t=1) and (2, t=5).
        assert_eq!(hops[0].counts[0], 2);
        assert_eq!(hops[0].ts[0], 1.0);
        assert_eq!(hops[0].ts[1], 5.0);
        // Hop 2 of slot 0 (node 0 at t = 1.0): nothing strictly before.
        assert_eq!(hops[1].counts[0], 0);
        // Hop 2 of slot 1 (node 2 at t = 5.0): events at t = 2 qualify.
        assert_eq!(hops[1].counts[1], 1);
        assert_eq!(hops[1].ts[hops[1].slot(1, 0)], 2.0);
        // Every hop-2 edge strictly precedes its parent edge.
        for i in 0..hops[1].num_roots() {
            for s2 in 0..hops[1].counts[i] {
                assert!(hops[1].ts[hops[1].slot(i, s2)] < hops[0].ts[i]);
            }
        }
    }

    /// Satellite contract: isolated roots and padded parent slots must
    /// expand into padded (zero-count) rows — never a panic, never a
    /// sample hanging off the node-0 sentinel.
    #[test]
    fn padded_slots_never_expand() {
        let g = graph();
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::with_fanouts(vec![4, 2]);
        // Node 4 has exactly one incidence (t = 4): 3 padded hop-1
        // slots whose stored id is the sentinel 0 — a real, busy node.
        let hops = s.sample_hops(&csr, &[4], &[10.0]);
        assert_eq!(hops[0].counts[0], 1);
        for slot in 1..4 {
            assert_eq!(hops[0].nbrs[slot], 0, "padding uses the sentinel id");
            assert_eq!(
                hops[1].counts[slot], 0,
                "padded hop-1 slot {slot} must not expand"
            );
            for s2 in 0..hops[1].k {
                let idx = hops[1].slot(slot, s2);
                assert_eq!(hops[1].nbrs[idx], 0);
                assert_eq!(hops[1].dts[idx], 0.0);
                assert_eq!(hops[1].ts[idx], 0.0);
            }
        }
    }

    /// An isolated root (no incidences at all) stays padded through
    /// every hop.
    #[test]
    fn isolated_root_yields_all_padded_hops() {
        let g = TemporalGraph::new(3, vec![ev(0, 1, 1.0, 0)]);
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::with_fanouts(vec![2, 2, 2]);
        let hops = s.sample_hops(&csr, &[2], &[5.0]);
        assert_eq!(hops.len(), 3);
        for (d, hop) in hops.iter().enumerate() {
            assert!(
                hop.counts.iter().all(|&c| c == 0),
                "hop {d} of an isolated root must be fully padded"
            );
            assert!(hop.nbrs.iter().all(|&n| n == 0));
        }
    }

    /// Fanout 0 hops are legal and empty (index round-trip tests use
    /// them); deeper hops then have empty frontiers.
    #[test]
    fn zero_fanout_hop_is_empty() {
        let g = graph();
        let csr = TCsr::build(&g);
        let s = RecentNeighborSampler::with_fanouts(vec![0, 2]);
        let hops = s.sample_hops(&csr, &[0, 1], &[10.0, 10.0]);
        assert_eq!(hops[0].num_slots(), 0);
        assert_eq!(hops[0].counts, vec![0, 0]);
        assert_eq!(hops[1].num_roots(), 0);
        assert_eq!(hops[1].num_slots(), 0);
    }
}
