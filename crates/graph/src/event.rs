//! Graph events and the event log.

use serde::{Deserialize, Serialize};

/// One graph event: an edge with id `eid` appearing between `src` and
/// `dst` at time `t`. `eid` indexes the dataset's edge-feature table
/// and is unique per event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Source node id.
    pub src: u32,
    /// Destination node id.
    pub dst: u32,
    /// Event timestamp (seconds; `0 ≤ t ≤ max_t` as in Table 2).
    pub t: f32,
    /// Edge/event id (row into the edge feature matrix).
    pub eid: u32,
}

/// A continuous-time dynamic graph: a chronologically sorted event log
/// over `num_nodes` nodes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TemporalGraph {
    num_nodes: usize,
    events: Vec<Event>,
    /// For bipartite graphs (Wikipedia/Reddit/MOOC user–item graphs):
    /// nodes `0..boundary` are the source partition and
    /// `boundary..num_nodes` the destination partition. `None` for
    /// general graphs (Flights, GDELT).
    bipartite_boundary: Option<u32>,
}

impl TemporalGraph {
    /// Builds a graph from an event list, sorting it chronologically
    /// (stable, so simultaneous events keep their input order — the
    /// same convention TGL uses for same-timestamp edges).
    ///
    /// # Panics
    /// Panics if any endpoint is out of range.
    pub fn new(num_nodes: usize, mut events: Vec<Event>) -> Self {
        for e in &events {
            assert!(
                (e.src as usize) < num_nodes && (e.dst as usize) < num_nodes,
                "event endpoint out of range: {:?} (num_nodes {})",
                e,
                num_nodes
            );
        }
        events.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("NaN timestamp"));
        Self {
            num_nodes,
            events,
            bipartite_boundary: None,
        }
    }

    /// Marks the graph bipartite with sources `0..boundary`.
    pub fn with_bipartite_boundary(mut self, boundary: u32) -> Self {
        assert!((boundary as usize) <= self.num_nodes);
        self.bipartite_boundary = Some(boundary);
        self
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of events (|E| in Table 2).
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// The chronologically sorted event log.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Largest timestamp (`max(t)` in Table 2); 0 for an empty graph.
    pub fn max_time(&self) -> f32 {
        self.events.last().map_or(0.0, |e| e.t)
    }

    /// Bipartite boundary if the graph is bipartite.
    pub fn bipartite_boundary(&self) -> Option<u32> {
        self.bipartite_boundary
    }

    /// Per-node total degree (in + out) over the whole log — the
    /// quantity Figures 5 and 8 sort nodes by.
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes];
        for e in &self.events {
            deg[e.src as usize] += 1;
            deg[e.dst as usize] += 1;
        }
        deg
    }

    /// Splits the event log chronologically into train/validation/test
    /// by event fraction (TGN/TGL use 70/15/15).
    ///
    /// # Panics
    /// Panics unless `0 < train_frac`, `0 ≤ val_frac`, and
    /// `train_frac + val_frac ≤ 1`.
    pub fn chronological_split(&self, train_frac: f64, val_frac: f64) -> (usize, usize) {
        assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac <= 1.0);
        let n = self.events.len();
        let train_end = (n as f64 * train_frac).round() as usize;
        let val_end = (n as f64 * (train_frac + val_frac)).round() as usize;
        (train_end.min(n), val_end.min(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: u32, dst: u32, t: f32, eid: u32) -> Event {
        Event { src, dst, t, eid }
    }

    #[test]
    fn events_are_sorted_on_construction() {
        let g = TemporalGraph::new(
            4,
            vec![ev(0, 1, 5.0, 0), ev(1, 2, 1.0, 1), ev(2, 3, 3.0, 2)],
        );
        let ts: Vec<f32> = g.events().iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![1.0, 3.0, 5.0]);
        assert_eq!(g.max_time(), 5.0);
    }

    #[test]
    fn stable_sort_preserves_simultaneous_order() {
        let g = TemporalGraph::new(3, vec![ev(0, 1, 2.0, 7), ev(1, 2, 2.0, 8)]);
        assert_eq!(g.events()[0].eid, 7);
        assert_eq!(g.events()[1].eid, 8);
    }

    #[test]
    fn degrees_count_both_endpoints() {
        let g = TemporalGraph::new(3, vec![ev(0, 1, 1.0, 0), ev(0, 2, 2.0, 1)]);
        assert_eq!(g.degrees(), vec![2, 1, 1]);
    }

    #[test]
    fn chronological_split_fractions() {
        let events = (0..100).map(|i| ev(0, 1, i as f32, i)).collect();
        let g = TemporalGraph::new(2, events);
        let (tr, va) = g.chronological_split(0.7, 0.15);
        assert_eq!(tr, 70);
        assert_eq!(va, 85);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn endpoint_out_of_range_panics() {
        TemporalGraph::new(2, vec![ev(0, 5, 1.0, 0)]);
    }

    #[test]
    fn bipartite_marker() {
        let g = TemporalGraph::new(10, vec![]).with_bipartite_boundary(4);
        assert_eq!(g.bipartite_boundary(), Some(4));
    }
}
