//! # disttgl-cluster
//!
//! Simulated distributed-GPU-cluster substrate.
//!
//! The paper trains on up to four AWS `g4dn.metal` machines (8 × T4
//! GPUs each, 100 Gbps Ethernet, NCCL weight synchronization). This
//! crate replaces that hardware with:
//!
//! * [`ClusterSpec`] — the `p machines × q GPUs` topology; "trainers"
//!   are threads, and rank→machine mapping decides which transfers are
//!   local;
//! * [`NetworkModel`] — an analytic latency + bandwidth cost model
//!   (PCIe-class intra-machine, Ethernet-class inter-machine) used to
//!   *meter* communication instead of performing it — the quantity
//!   behind Figure 2(b) and the throughput scaling of Figure 12;
//! * [`Communicator`] — a deterministic shared-memory collective group
//!   (barrier / all-reduce-mean / broadcast) standing in for NCCL.
//!   All-reduce sums in fixed rank order so every replica computes
//!   bit-identical averaged gradients, which keeps replicas in
//!   lock-step exactly like NCCL's deterministic reductions.
//!
//! The schedule-level behaviour (who communicates what, when) is real;
//! only the wire is simulated. See `DESIGN.md` §1.

mod comm;
mod fault;
mod netsim;
mod spec;

pub use comm::{CommError, CommStats, Communicator, CommunicatorGroup};
pub use fault::{FaultKind, FaultPlan};
pub use netsim::NetworkModel;
pub use spec::ClusterSpec;
