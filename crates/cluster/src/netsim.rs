//! Analytic network cost model.
//!
//! Communication is *metered*, not performed: the experiments that need
//! network effects (Figure 2(b), Figure 12 scaling, Table 1 sync
//! volume) charge simulated wall time through this model. The default
//! parameters approximate the paper's testbed: PCIe 3.0-class links
//! inside a g4dn.metal box and 100 Gbps Ethernet between boxes.

use crate::spec::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Latency + bandwidth model with separate intra-/inter-machine links.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Per-message latency within a machine (PCIe hop).
    pub intra_latency_ns: u64,
    /// Intra-machine bandwidth in bytes/second.
    pub intra_bytes_per_sec: f64,
    /// Per-message latency between machines (Ethernet RTT/2-ish).
    pub inter_latency_ns: u64,
    /// Inter-machine bandwidth in bytes/second.
    pub inter_bytes_per_sec: f64,
    /// Effective bandwidth of remote *memory-service* operations
    /// (RPC-style gather/scatter of node-memory rows). Far below NIC
    /// line rate: each request serializes sparse rows through the
    /// framework's RPC stack — this is why Figure 2(b)'s distributed
    /// node memory is catastrophically slow while NCCL weight sync is
    /// not.
    pub rpc_bytes_per_sec: f64,
    /// Fixed overhead per remote memory-service request.
    pub rpc_overhead_ns: u64,
}

impl NetworkModel {
    /// The paper's testbed: ~12 GB/s effective PCIe, 100 Gbps
    /// (≈ 12.5 GB/s line rate, ~10 GB/s effective) Ethernet, in-rack
    /// latency ("we create the instances in the same group of rack").
    pub fn t4_testbed() -> Self {
        Self {
            intra_latency_ns: 5_000,
            intra_bytes_per_sec: 12.0e9,
            inter_latency_ns: 50_000,
            inter_bytes_per_sec: 10.0e9,
            rpc_bytes_per_sec: 1.5e9,
            rpc_overhead_ns: 200_000,
        }
    }

    /// Time for one point-to-point transfer of `bytes`.
    pub fn transfer(&self, bytes: usize, cross_machine: bool) -> Duration {
        let (lat, bw) = if cross_machine {
            (self.inter_latency_ns, self.inter_bytes_per_sec)
        } else {
            (self.intra_latency_ns, self.intra_bytes_per_sec)
        };
        Duration::from_nanos(lat) + Duration::from_secs_f64(bytes as f64 / bw)
    }

    /// Modeled time of a ring all-reduce of `bytes` per rank.
    ///
    /// Bandwidth term: `2·(n−1)/n · bytes` traverses every link; the
    /// slowest link (Ethernet when the ring spans machines) bounds it.
    /// Latency term: NCCL pipelines chunks, so per-hop latency is paid
    /// for one traversal of the ring, with each link charged at its own
    /// rate — a machine-spanning ring crosses Ethernet `p` times and
    /// PCIe `n − p` times. Weight sync therefore stays cheap at any
    /// scale (small `bytes`), unlike node-memory sync (§1, Fig 2(b)).
    pub fn ring_allreduce(&self, bytes: usize, spec: &ClusterSpec) -> Duration {
        let n = spec.world();
        if n <= 1 {
            return Duration::ZERO;
        }
        let p = spec.machines;
        let bw = if p > 1 {
            self.inter_bytes_per_sec
        } else {
            self.intra_bytes_per_sec
        };
        let inter_hops = if p > 1 { p as u64 } else { 0 };
        let intra_hops = n as u64 - inter_hops;
        let latency = inter_hops * self.inter_latency_ns + intra_hops * self.intra_latency_ns;
        let volume = 2.0 * (n - 1) as f64 / n as f64 * bytes as f64;
        Duration::from_nanos(latency) + Duration::from_secs_f64(volume / bw)
    }

    /// Modeled time for **one serialized memory operation round** (a
    /// mini-batch read or write) against node memory partitioned
    /// uniformly over `machines` machines — the Figure 2(b) layout
    /// ("each machine owns a unique equally-sized portion").
    ///
    /// A fraction `(machines − 1)/machines` of the rows is remote and
    /// moves at RPC speed with per-request overhead; the local share
    /// moves at host-memory/PCIe speed. Rounds cannot be batched
    /// across mini-batches because of the strict temporal dependencies
    /// (§1), so epoch time = rounds × this.
    pub fn partitioned_round(&self, bytes: usize, machines: usize) -> Duration {
        assert!(machines >= 1);
        if machines == 1 {
            return self.transfer(bytes, false);
        }
        let remote_frac = (machines - 1) as f64 / machines as f64;
        let remote_bytes = bytes as f64 * remote_frac;
        let local_bytes = bytes - remote_bytes as usize;
        // One RPC round per remote machine (issued in parallel; the
        // per-request overheads still serialize in the sender's stack).
        let mut t = Duration::from_nanos(self.rpc_overhead_ns * (machines as u64 - 1));
        t += Duration::from_secs_f64(remote_bytes / self.rpc_bytes_per_sec);
        t += self.transfer(local_bytes, false);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_is_slower_than_intra() {
        let m = NetworkModel::t4_testbed();
        let b = 1 << 20;
        assert!(m.transfer(b, true) > m.transfer(b, false));
    }

    #[test]
    fn transfer_monotone_in_bytes() {
        let m = NetworkModel::t4_testbed();
        assert!(m.transfer(2 << 20, false) > m.transfer(1 << 20, false));
    }

    #[test]
    fn single_rank_allreduce_is_free() {
        let m = NetworkModel::t4_testbed();
        assert_eq!(
            m.ring_allreduce(1 << 20, &ClusterSpec::new(1, 1)),
            Duration::ZERO
        );
    }

    #[test]
    fn allreduce_crossing_machines_pays_ethernet() {
        let m = NetworkModel::t4_testbed();
        let single = m.ring_allreduce(1 << 20, &ClusterSpec::new(1, 8));
        let multi = m.ring_allreduce(1 << 20, &ClusterSpec::new(2, 4));
        assert!(multi > single, "{:?} vs {:?}", multi, single);
    }

    #[test]
    fn allreduce_volume_saturates_with_world() {
        // 2(n−1)/n → 2, so doubling world from 8 to 16 adds little
        // volume (but adds latency steps).
        let m = NetworkModel::t4_testbed();
        let w8 = m.ring_allreduce(8 << 20, &ClusterSpec::new(2, 4));
        let w16 = m.ring_allreduce(8 << 20, &ClusterSpec::new(2, 8));
        let ratio = w16.as_secs_f64() / w8.as_secs_f64();
        assert!(ratio < 1.5, "ratio {}", ratio);
    }

    #[test]
    fn partitioned_round_grows_sharply_with_machine_count() {
        // The Figure 2(b) shape: distributing the node memory makes
        // every fetch mostly remote at RPC speed, so per-round (and
        // hence per-epoch) memory time grows steeply with machines.
        let m = NetworkModel::t4_testbed();
        let bytes = 2 << 20; // a mini-batch's rows
        let t1 = m.partitioned_round(bytes, 1);
        let t2 = m.partitioned_round(bytes, 2);
        let t4 = m.partitioned_round(bytes, 4);
        assert!(t2 > t1);
        assert!(t4 > t2);
        // Remote rounds are several times the local round.
        assert!(
            t2.as_secs_f64() > 2.0 * t1.as_secs_f64(),
            "{:?} vs {:?}",
            t2,
            t1
        );
    }
}
