//! Deterministic shared-memory collectives (the NCCL stand-in).
//!
//! [`CommunicatorGroup::new(world)`] creates one [`Communicator`] per
//! rank; trainer threads move their communicator in and call
//! collectives symmetrically (every rank must call every collective in
//! the same order — the NCCL contract).
//!
//! All-reduce sums contributions in **fixed rank order**, so every rank
//! computes a bit-identical result; combined with identical Adam state
//! this keeps all model replicas exactly equal across training, which
//! the tests assert.

use crate::netsim::NetworkModel;
use crate::spec::ClusterSpec;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};

/// A collective failed because the group was aborted: some rank
/// declared itself dead via [`Communicator::abort`] (a crashed lane in
/// fault-injection runs). The abort is terminal — every in-flight and
/// future collective on the group returns this error, so surviving
/// ranks unwind cleanly instead of blocking forever on a barrier the
/// dead rank will never reach.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The group was aborted by some rank.
    Aborted,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Aborted => write!(f, "communicator group aborted"),
        }
    }
}

impl std::error::Error for CommError {}

/// Reusable sense-reversing barrier with a terminal abort: waiters
/// blocked on a generation that will never complete wake up and return
/// `false` once the group's abort flag is raised.
struct Barrier {
    lock: StdMutex<(usize, u64)>, // (waiting count, generation)
    cvar: Condvar,
    world: usize,
}

impl Barrier {
    fn new(world: usize) -> Self {
        Self {
            lock: StdMutex::new((0, 0)),
            cvar: Condvar::new(),
            world,
        }
    }

    /// Returns `true` when the whole group arrived, `false` when the
    /// group was aborted first.
    ///
    /// Completion wins over abort: this rank always *arrives* first,
    /// and a generation every rank reached completes even when the
    /// abort flag was raised concurrently by a rank that has already
    /// moved past it. Only a rank that would otherwise block forever
    /// observes the abort — and it withdraws its arrival on the way
    /// out, so a stale count can never combine with a later call to
    /// falsely complete a generation. This makes fault unwinding
    /// deterministic: a collective either completes on every rank or
    /// fails on every rank, never a mix decided by wake-up timing.
    fn wait(&self, aborted: &AtomicBool) -> bool {
        let mut guard = match self.lock.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                // A lane panicked while holding the barrier lock, so
                // the (count, generation) pair may be mid-update.
                // Converting the poison into a group abort keeps the
                // failure contract: survivors get `CommError::Aborted`
                // instead of a cascading poison panic. This rank never
                // arrives, so the stale counter cannot complete a
                // generation.
                aborted.store(true, Ordering::Release);
                drop(poisoned.into_inner());
                self.cvar.notify_all();
                return false;
            }
        };
        let gen = guard.1;
        guard.0 += 1;
        if guard.0 == self.world {
            guard.0 = 0;
            guard.1 += 1;
            self.cvar.notify_all();
            return true;
        }
        while guard.1 == gen {
            if aborted.load(Ordering::Acquire) {
                guard.0 -= 1;
                return false;
            }
            guard = match self.cvar.wait(guard) {
                Ok(g) => g,
                Err(poisoned) => {
                    // Same contract as above, but this waiter already
                    // arrived — withdraw the arrival on the way out.
                    aborted.store(true, Ordering::Release);
                    let mut g = poisoned.into_inner();
                    g.0 = g.0.saturating_sub(1);
                    drop(g);
                    self.cvar.notify_all();
                    return false;
                }
            };
        }
        true
    }

    /// Wakes every waiter so it can observe the abort flag. Must be
    /// called after the flag is set. Tolerates a poisoned lock — abort
    /// delivery is exactly what a poisoned group needs.
    fn wake_all(&self) {
        let _guard = self.lock.lock().unwrap_or_else(PoisonError::into_inner);
        self.cvar.notify_all();
    }
}

/// Aggregate communication counters for one group.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommStats {
    /// All-reduce invocations (per group, not per rank).
    pub allreduce_count: u64,
    /// Payload bytes per rank summed over invocations.
    pub allreduce_bytes: u64,
    /// Modeled wire time (ns) accumulated from the network model.
    pub modeled_comm_nanos: u64,
}

struct Shared {
    world: usize,
    barrier: Barrier,
    /// Terminal abort flag (fault injection / crashed lanes).
    aborted: AtomicBool,
    /// Per-rank contribution slots for the current collective.
    slots: Vec<Mutex<Vec<f32>>>,
    allreduce_count: AtomicU64,
    allreduce_bytes: AtomicU64,
    modeled_comm_nanos: AtomicU64,
    /// Ranks that still have a live Communicator (signals misuse).
    live: AtomicUsize,
    spec: ClusterSpec,
    net: NetworkModel,
}

/// Factory for a group of communicators.
pub struct CommunicatorGroup {
    shared: Arc<Shared>,
}

impl CommunicatorGroup {
    /// Creates a group of `spec.world()` ranks metered by `net`.
    pub fn new(spec: ClusterSpec, net: NetworkModel) -> Self {
        let world = spec.world();
        let shared = Arc::new(Shared {
            world,
            barrier: Barrier::new(world),
            aborted: AtomicBool::new(false),
            slots: (0..world).map(|_| Mutex::new(Vec::new())).collect(),
            allreduce_count: AtomicU64::new(0),
            allreduce_bytes: AtomicU64::new(0),
            modeled_comm_nanos: AtomicU64::new(0),
            live: AtomicUsize::new(0),
            spec,
            net,
        });
        Self { shared }
    }

    /// Single-machine group with `world` ranks (tests, baselines).
    pub fn single_machine(world: usize) -> Self {
        Self::new(ClusterSpec::new(1, world), NetworkModel::t4_testbed())
    }

    /// Hands out the communicator for `rank`. Each rank must be taken
    /// exactly once.
    pub fn communicator(&self, rank: usize) -> Communicator {
        assert!(rank < self.shared.world, "rank out of range");
        self.shared.live.fetch_add(1, Ordering::Relaxed);
        Communicator {
            shared: Arc::clone(&self.shared),
            rank,
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CommStats {
        CommStats {
            allreduce_count: self.shared.allreduce_count.load(Ordering::Relaxed),
            allreduce_bytes: self.shared.allreduce_bytes.load(Ordering::Relaxed),
            modeled_comm_nanos: self.shared.modeled_comm_nanos.load(Ordering::Relaxed),
        }
    }
}

/// One rank's endpoint into the group's collectives.
pub struct Communicator {
    shared: Arc<Shared>,
    rank: usize,
}

impl Communicator {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn world(&self) -> usize {
        self.shared.world
    }

    /// Declares this rank dead and aborts the whole group: every rank
    /// blocked in (or later entering) a collective gets
    /// [`CommError::Aborted`] instead of waiting forever. Terminal —
    /// the group cannot be re-armed.
    pub fn abort(&self) {
        self.shared.aborted.store(true, Ordering::Release);
        self.shared.barrier.wake_all();
    }

    /// Whether the group has been aborted.
    pub fn is_aborted(&self) -> bool {
        self.shared.aborted.load(Ordering::Acquire)
    }

    /// Blocks until every rank arrives.
    ///
    /// # Panics
    /// Panics if the group is aborted while waiting; use
    /// [`Communicator::try_barrier`] on fault-tolerant paths.
    pub fn barrier(&self) {
        self.try_barrier()
            .unwrap_or_else(|e| panic!("barrier: {e}"));
    }

    /// Fallible [`Communicator::barrier`].
    pub fn try_barrier(&self) -> Result<(), CommError> {
        if self.shared.barrier.wait(&self.shared.aborted) {
            Ok(())
        } else {
            Err(CommError::Aborted)
        }
    }

    /// Averages `data` across all ranks in place.
    ///
    /// Deterministic: the reduction sums rank 0's slice first, then
    /// rank 1's, etc., so all ranks end with bit-identical contents.
    /// Records the modeled ring-all-reduce wire time once per call.
    ///
    /// # Panics
    /// Panics if ranks pass different lengths, or if the group is
    /// aborted mid-collective; use
    /// [`Communicator::try_allreduce_mean`] on fault-tolerant paths.
    pub fn allreduce_mean(&self, data: &mut [f32]) {
        self.try_allreduce_mean(data)
            .unwrap_or_else(|e| panic!("allreduce: {e}"));
    }

    /// Fallible [`Communicator::allreduce_mean`]: returns
    /// [`CommError::Aborted`] (leaving `data` unchanged) if the group
    /// is aborted before the reduction completes.
    pub fn try_allreduce_mean(&self, data: &mut [f32]) -> Result<(), CommError> {
        let shared = &self.shared;
        *shared.slots[self.rank].lock() = data.to_vec();
        if !shared.barrier.wait(&shared.aborted) {
            return Err(CommError::Aborted);
        }
        // Every rank reduces independently in rank order → identical
        // results without a broadcast round.
        let mut acc = vec![0.0f32; data.len()];
        for slot in &shared.slots {
            let s = slot.lock();
            assert_eq!(
                s.len(),
                data.len(),
                "allreduce: length mismatch across ranks"
            );
            for (a, &v) in acc.iter_mut().zip(s.iter()) {
                *a += v;
            }
        }
        let inv = 1.0 / shared.world as f32;
        // The second barrier keeps slot reuse safe across rounds; only
        // commit the averaged result after it succeeds so an abort
        // leaves the caller's gradient buffer untouched.
        if !shared.barrier.wait(&shared.aborted) {
            return Err(CommError::Aborted);
        }
        for (d, a) in data.iter_mut().zip(acc) {
            *d = a * inv;
        }
        if self.rank == 0 {
            let bytes = std::mem::size_of_val(data);
            shared.allreduce_count.fetch_add(1, Ordering::Relaxed);
            shared
                .allreduce_bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
            let t = shared.net.ring_allreduce(bytes, &shared.spec);
            shared
                .modeled_comm_nanos
                .fetch_add(t.as_nanos() as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Copies `root`'s buffer into every rank's `data` (initial model
    /// replication).
    ///
    /// # Panics
    /// Panics if ranks pass different lengths or the group is aborted.
    pub fn broadcast(&self, root: usize, data: &mut [f32]) {
        let shared = &self.shared;
        if self.rank == root {
            *shared.slots[root].lock() = data.to_vec();
        }
        if !shared.barrier.wait(&shared.aborted) {
            panic!("broadcast: {}", CommError::Aborted);
        }
        if self.rank != root {
            let s = shared.slots[root].lock();
            assert_eq!(s.len(), data.len(), "broadcast: length mismatch");
            data.copy_from_slice(&s);
        }
        if !shared.barrier.wait(&shared.aborted) {
            panic!("broadcast: {}", CommError::Aborted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_group<T: Send + 'static>(
        world: usize,
        f: impl Fn(Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let group = CommunicatorGroup::single_machine(world);
        let handles: Vec<_> = (0..world)
            .map(|r| {
                let comm = group.communicator(r);
                let f = f.clone();
                std::thread::spawn(move || f(comm))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn allreduce_mean_averages() {
        let results = run_group(4, |comm| {
            let mut v = vec![comm.rank() as f32; 3];
            comm.allreduce_mean(&mut v);
            v
        });
        // mean of 0..4 = 1.5
        for v in results {
            assert_eq!(v, vec![1.5, 1.5, 1.5]);
        }
    }

    #[test]
    fn allreduce_is_bitwise_identical_across_ranks() {
        let results = run_group(8, |comm| {
            // Values whose FP sum depends on order — determinism check.
            let mut v: Vec<f32> = (0..64)
                .map(|i| ((comm.rank() * 64 + i) as f32).sin() * 1e3)
                .collect();
            comm.allreduce_mean(&mut v);
            v
        });
        for r in 1..8 {
            assert_eq!(results[0], results[r], "rank {} diverged", r);
        }
    }

    #[test]
    fn repeated_allreduce_rounds() {
        let results = run_group(3, |comm| {
            let mut v = vec![(comm.rank() + 1) as f32];
            for _ in 0..10 {
                comm.allreduce_mean(&mut v);
            }
            v[0]
        });
        // After the first round all ranks hold 2.0; stays 2.0.
        for v in results {
            assert!((v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn broadcast_from_root() {
        let results = run_group(4, |comm| {
            let mut v = if comm.rank() == 2 {
                vec![9.0, 8.0]
            } else {
                vec![0.0, 0.0]
            };
            comm.broadcast(2, &mut v);
            v
        });
        for v in results {
            assert_eq!(v, vec![9.0, 8.0]);
        }
    }

    #[test]
    fn stats_account_calls_and_bytes() {
        let group = CommunicatorGroup::new(ClusterSpec::new(2, 2), NetworkModel::t4_testbed());
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let comm = group.communicator(r);
                std::thread::spawn(move || {
                    let mut v = vec![1.0f32; 100];
                    comm.allreduce_mean(&mut v);
                    comm.allreduce_mean(&mut v);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = group.stats();
        assert_eq!(stats.allreduce_count, 2);
        assert_eq!(stats.allreduce_bytes, 2 * 400);
        assert!(stats.modeled_comm_nanos > 0);
    }

    #[test]
    fn abort_unblocks_waiting_allreduce() {
        let group = CommunicatorGroup::single_machine(2);
        let c0 = group.communicator(0);
        let c1 = group.communicator(1);
        let t = std::thread::spawn(move || {
            let mut v = vec![1.0f32, 2.0];
            let r = c1.try_allreduce_mean(&mut v);
            (r, v)
        });
        // Rank 0 "crashes" instead of joining the collective; rank 1
        // must unwind with Aborted and an untouched buffer.
        std::thread::sleep(std::time::Duration::from_millis(20));
        c0.abort();
        let (r, v) = t.join().unwrap();
        assert_eq!(r, Err(CommError::Aborted));
        assert_eq!(v, vec![1.0, 2.0]);
        assert!(c0.is_aborted());
    }

    #[test]
    fn aborted_group_fails_fast_forever() {
        let group = CommunicatorGroup::single_machine(2);
        let c0 = group.communicator(0);
        let _c1 = group.communicator(1);
        c0.abort();
        assert_eq!(c0.try_barrier(), Err(CommError::Aborted));
        let mut v = vec![0.0f32];
        assert_eq!(c0.try_allreduce_mean(&mut v), Err(CommError::Aborted));
        assert_eq!(c0.try_allreduce_mean(&mut v), Err(CommError::Aborted));
    }

    #[test]
    fn survivors_all_observe_abort() {
        let group = CommunicatorGroup::single_machine(4);
        let comms: Vec<_> = (0..4).map(|r| group.communicator(r)).collect();
        let mut comms = comms.into_iter();
        let crasher = comms.next().unwrap();
        let handles: Vec<_> = comms
            .map(|c| {
                std::thread::spawn(move || {
                    let mut v = vec![c.rank() as f32];
                    c.try_allreduce_mean(&mut v)
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(10));
        crasher.abort();
        for h in handles {
            assert_eq!(h.join().unwrap(), Err(CommError::Aborted));
        }
    }

    #[test]
    fn poisoned_barrier_converts_to_abort_not_panic() {
        let group = CommunicatorGroup::single_machine(2);
        let c0 = group.communicator(0);
        let c1 = group.communicator(1);
        // Poison the barrier lock the way a crashing lane would: a
        // thread panics while holding the guard.
        let shared = Arc::clone(&c0.shared);
        std::thread::spawn(move || {
            let _guard = shared.barrier.lock.lock().unwrap();
            panic!("injected panic while holding the barrier lock");
        })
        .join()
        .unwrap_err();
        // Survivors observe the contractual abort, not a poison panic.
        assert_eq!(c0.try_barrier(), Err(CommError::Aborted));
        assert!(c0.is_aborted());
        let mut v = vec![1.0f32, 2.0];
        assert_eq!(c1.try_allreduce_mean(&mut v), Err(CommError::Aborted));
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn poisoned_barrier_unblocks_in_flight_waiter() {
        let group = CommunicatorGroup::single_machine(2);
        let c0 = group.communicator(0);
        let c1 = group.communicator(1);
        let waiter = std::thread::spawn(move || c1.try_barrier());
        // Let rank 1 park inside the condvar wait, then poison.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let shared = Arc::clone(&c0.shared);
        std::thread::spawn(move || {
            let _guard = shared.barrier.lock.lock().unwrap();
            panic!("injected panic while holding the barrier lock");
        })
        .join()
        .unwrap_err();
        // Rank 0's next collective observes the poison, raises the
        // abort, and wakes rank 1 out of its condvar wait — both get
        // the contractual error.
        assert_eq!(c0.try_barrier(), Err(CommError::Aborted));
        assert_eq!(waiter.join().unwrap(), Err(CommError::Aborted));
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::AtomicUsize;
        let flag = Arc::new(AtomicUsize::new(0));
        let group = CommunicatorGroup::single_machine(2);
        let f2 = Arc::clone(&flag);
        let c0 = group.communicator(0);
        let c1 = group.communicator(1);
        let t = std::thread::spawn(move || {
            f2.store(1, Ordering::SeqCst);
            c1.barrier();
            c1.barrier();
        });
        c0.barrier(); // After this, rank 1 must have set the flag.
        assert_eq!(flag.load(Ordering::SeqCst), 1);
        c0.barrier();
        t.join().unwrap();
    }
}
