//! Deterministic shared-memory collectives (the NCCL stand-in).
//!
//! [`CommunicatorGroup::new(world)`] creates one [`Communicator`] per
//! rank; trainer threads move their communicator in and call
//! collectives symmetrically (every rank must call every collective in
//! the same order — the NCCL contract).
//!
//! All-reduce sums contributions in **fixed rank order**, so every rank
//! computes a bit-identical result; combined with identical Adam state
//! this keeps all model replicas exactly equal across training, which
//! the tests assert.

use crate::netsim::NetworkModel;
use crate::spec::ClusterSpec;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Reusable sense-reversing barrier.
struct Barrier {
    lock: StdMutex<(usize, u64)>, // (waiting count, generation)
    cvar: Condvar,
    world: usize,
}

impl Barrier {
    fn new(world: usize) -> Self {
        Self {
            lock: StdMutex::new((0, 0)),
            cvar: Condvar::new(),
            world,
        }
    }

    fn wait(&self) {
        let mut guard = self.lock.lock().unwrap();
        let gen = guard.1;
        guard.0 += 1;
        if guard.0 == self.world {
            guard.0 = 0;
            guard.1 += 1;
            self.cvar.notify_all();
        } else {
            while guard.1 == gen {
                guard = self.cvar.wait(guard).unwrap();
            }
        }
    }
}

/// Aggregate communication counters for one group.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommStats {
    /// All-reduce invocations (per group, not per rank).
    pub allreduce_count: u64,
    /// Payload bytes per rank summed over invocations.
    pub allreduce_bytes: u64,
    /// Modeled wire time (ns) accumulated from the network model.
    pub modeled_comm_nanos: u64,
}

struct Shared {
    world: usize,
    barrier: Barrier,
    /// Per-rank contribution slots for the current collective.
    slots: Vec<Mutex<Vec<f32>>>,
    allreduce_count: AtomicU64,
    allreduce_bytes: AtomicU64,
    modeled_comm_nanos: AtomicU64,
    /// Ranks that still have a live Communicator (signals misuse).
    live: AtomicUsize,
    spec: ClusterSpec,
    net: NetworkModel,
}

/// Factory for a group of communicators.
pub struct CommunicatorGroup {
    shared: Arc<Shared>,
}

impl CommunicatorGroup {
    /// Creates a group of `spec.world()` ranks metered by `net`.
    pub fn new(spec: ClusterSpec, net: NetworkModel) -> Self {
        let world = spec.world();
        let shared = Arc::new(Shared {
            world,
            barrier: Barrier::new(world),
            slots: (0..world).map(|_| Mutex::new(Vec::new())).collect(),
            allreduce_count: AtomicU64::new(0),
            allreduce_bytes: AtomicU64::new(0),
            modeled_comm_nanos: AtomicU64::new(0),
            live: AtomicUsize::new(0),
            spec,
            net,
        });
        Self { shared }
    }

    /// Single-machine group with `world` ranks (tests, baselines).
    pub fn single_machine(world: usize) -> Self {
        Self::new(ClusterSpec::new(1, world), NetworkModel::t4_testbed())
    }

    /// Hands out the communicator for `rank`. Each rank must be taken
    /// exactly once.
    pub fn communicator(&self, rank: usize) -> Communicator {
        assert!(rank < self.shared.world, "rank out of range");
        self.shared.live.fetch_add(1, Ordering::Relaxed);
        Communicator {
            shared: Arc::clone(&self.shared),
            rank,
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CommStats {
        CommStats {
            allreduce_count: self.shared.allreduce_count.load(Ordering::Relaxed),
            allreduce_bytes: self.shared.allreduce_bytes.load(Ordering::Relaxed),
            modeled_comm_nanos: self.shared.modeled_comm_nanos.load(Ordering::Relaxed),
        }
    }
}

/// One rank's endpoint into the group's collectives.
pub struct Communicator {
    shared: Arc<Shared>,
    rank: usize,
}

impl Communicator {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn world(&self) -> usize {
        self.shared.world
    }

    /// Blocks until every rank arrives.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Averages `data` across all ranks in place.
    ///
    /// Deterministic: the reduction sums rank 0's slice first, then
    /// rank 1's, etc., so all ranks end with bit-identical contents.
    /// Records the modeled ring-all-reduce wire time once per call.
    ///
    /// # Panics
    /// Panics if ranks pass different lengths.
    pub fn allreduce_mean(&self, data: &mut [f32]) {
        let shared = &self.shared;
        *shared.slots[self.rank].lock() = data.to_vec();
        shared.barrier.wait();
        // Every rank reduces independently in rank order → identical
        // results without a broadcast round.
        let mut acc = vec![0.0f32; data.len()];
        for slot in &shared.slots {
            let s = slot.lock();
            assert_eq!(
                s.len(),
                data.len(),
                "allreduce: length mismatch across ranks"
            );
            for (a, &v) in acc.iter_mut().zip(s.iter()) {
                *a += v;
            }
        }
        let inv = 1.0 / shared.world as f32;
        for (d, a) in data.iter_mut().zip(acc) {
            *d = a * inv;
        }
        shared.barrier.wait();
        if self.rank == 0 {
            let bytes = std::mem::size_of_val(data);
            shared.allreduce_count.fetch_add(1, Ordering::Relaxed);
            shared
                .allreduce_bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
            let t = shared.net.ring_allreduce(bytes, &shared.spec);
            shared
                .modeled_comm_nanos
                .fetch_add(t.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Copies `root`'s buffer into every rank's `data` (initial model
    /// replication).
    pub fn broadcast(&self, root: usize, data: &mut [f32]) {
        let shared = &self.shared;
        if self.rank == root {
            *shared.slots[root].lock() = data.to_vec();
        }
        shared.barrier.wait();
        if self.rank != root {
            let s = shared.slots[root].lock();
            assert_eq!(s.len(), data.len(), "broadcast: length mismatch");
            data.copy_from_slice(&s);
        }
        shared.barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_group<T: Send + 'static>(
        world: usize,
        f: impl Fn(Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let group = CommunicatorGroup::single_machine(world);
        let handles: Vec<_> = (0..world)
            .map(|r| {
                let comm = group.communicator(r);
                let f = f.clone();
                std::thread::spawn(move || f(comm))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn allreduce_mean_averages() {
        let results = run_group(4, |comm| {
            let mut v = vec![comm.rank() as f32; 3];
            comm.allreduce_mean(&mut v);
            v
        });
        // mean of 0..4 = 1.5
        for v in results {
            assert_eq!(v, vec![1.5, 1.5, 1.5]);
        }
    }

    #[test]
    fn allreduce_is_bitwise_identical_across_ranks() {
        let results = run_group(8, |comm| {
            // Values whose FP sum depends on order — determinism check.
            let mut v: Vec<f32> = (0..64)
                .map(|i| ((comm.rank() * 64 + i) as f32).sin() * 1e3)
                .collect();
            comm.allreduce_mean(&mut v);
            v
        });
        for r in 1..8 {
            assert_eq!(results[0], results[r], "rank {} diverged", r);
        }
    }

    #[test]
    fn repeated_allreduce_rounds() {
        let results = run_group(3, |comm| {
            let mut v = vec![(comm.rank() + 1) as f32];
            for _ in 0..10 {
                comm.allreduce_mean(&mut v);
            }
            v[0]
        });
        // After the first round all ranks hold 2.0; stays 2.0.
        for v in results {
            assert!((v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn broadcast_from_root() {
        let results = run_group(4, |comm| {
            let mut v = if comm.rank() == 2 {
                vec![9.0, 8.0]
            } else {
                vec![0.0, 0.0]
            };
            comm.broadcast(2, &mut v);
            v
        });
        for v in results {
            assert_eq!(v, vec![9.0, 8.0]);
        }
    }

    #[test]
    fn stats_account_calls_and_bytes() {
        let group = CommunicatorGroup::new(ClusterSpec::new(2, 2), NetworkModel::t4_testbed());
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let comm = group.communicator(r);
                std::thread::spawn(move || {
                    let mut v = vec![1.0f32; 100];
                    comm.allreduce_mean(&mut v);
                    comm.allreduce_mean(&mut v);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = group.stats();
        assert_eq!(stats.allreduce_count, 2);
        assert_eq!(stats.allreduce_bytes, 2 * 400);
        assert!(stats.modeled_comm_nanos > 0);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::AtomicUsize;
        let flag = Arc::new(AtomicUsize::new(0));
        let group = CommunicatorGroup::single_machine(2);
        let f2 = Arc::clone(&flag);
        let c0 = group.communicator(0);
        let c1 = group.communicator(1);
        let t = std::thread::spawn(move || {
            f2.store(1, Ordering::SeqCst);
            c1.barrier();
            c1.barrier();
        });
        c0.barrier(); // After this, rank 1 must have set the flag.
        assert_eq!(flag.load(Ordering::SeqCst), 1);
        c0.barrier();
        t.join().unwrap();
    }
}
