//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a declarative, seed-reproducible list of faults
//! to inject into a training run: a trainer lane that crashes at a
//! fixed step, a lane whose speculative-gather posting is delayed, or
//! a memory daemon that shuts down after a fixed number of serialized
//! turns. The plan is data, not behaviour — `core::dist` reads it and
//! arranges each fault at the matching point in the schedule, so a
//! given `(config, plan)` pair replays the *same* failure every run.
//! That is what makes the failure-injection tests assertions rather
//! than flaky observations: survivor state after a crash can be
//! compared bit-for-bit against an oracle.
//!
//! Faults compose: a plan may carry several faults on distinct ranks /
//! groups. Faults targeting ranks or groups outside the actual
//! topology are ignored (the accessors simply never match).

use serde::{Deserialize, Serialize, Value};

/// One injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Trainer `rank` crashes (aborts its communicator group and
    /// stops) immediately before executing global step `step`.
    LaneCrash { rank: usize, step: usize },
    /// Trainer `rank` suppresses speculative-gather posting for its
    /// first `steps` acquire steps, modeling a slow collection path.
    /// Training results must be bit-identical with or without this
    /// fault — speculation is an overlap optimization, not semantics.
    DelaySpeculation { rank: usize, steps: usize },
    /// Memory daemon `group` shuts itself down after serving
    /// `after_turns` complete serialized turns, modeling a memory-node
    /// crash mid-epoch. Trainers observe structured daemon errors.
    /// `after_turns` counts absolute turns from the start of the full
    /// schedule, so a resumed run must strip fired instances or the
    /// daemon dies again immediately.
    DaemonShutdown { group: usize, after_turns: u64 },
    /// The checkpoint written at unit boundary `at` is torn: rank 0
    /// persists only a truncated prefix of the frame (modeling a crash
    /// mid-write on a filesystem without atomic rename) and the run
    /// aborts. Recovery must detect the bad digest and fall back past
    /// the torn file to the newest good checkpoint.
    TornCheckpoint { at: usize },
}

// Hand-written (de)serialization: the workspace serde shim's derive
// does not support data-carrying enum variants. Encoded as an
// internally tagged object, e.g.
// `{"kind":"lane_crash","rank":1,"step":7}`.
impl Serialize for FaultKind {
    fn to_value(&self) -> Value {
        let obj = |fields: Vec<(&str, u64)>, kind: &str| {
            let mut entries = vec![("kind".to_string(), Value::Str(kind.to_string()))];
            entries.extend(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Value::Num(v as f64))),
            );
            Value::Object(entries)
        };
        match *self {
            FaultKind::LaneCrash { rank, step } => obj(
                vec![("rank", rank as u64), ("step", step as u64)],
                "lane_crash",
            ),
            FaultKind::DelaySpeculation { rank, steps } => obj(
                vec![("rank", rank as u64), ("steps", steps as u64)],
                "delay_speculation",
            ),
            FaultKind::DaemonShutdown { group, after_turns } => obj(
                vec![("group", group as u64), ("after_turns", after_turns)],
                "daemon_shutdown",
            ),
            FaultKind::TornCheckpoint { at } => obj(vec![("at", at as u64)], "torn_checkpoint"),
        }
    }
}

impl Deserialize for FaultKind {
    fn from_value(v: &Value) -> Result<Self, String> {
        let entries = v
            .as_object()
            .ok_or_else(|| format!("fault: expected object, got {v:?}"))?;
        let kind = serde::__field(entries, "kind")
            .as_str()
            .ok_or("fault: missing kind tag")?;
        let num = |name: &str| -> Result<u64, String> {
            serde::__field(entries, name)
                .as_f64()
                .map(|n| n as u64)
                .ok_or_else(|| format!("fault: missing numeric field `{name}`"))
        };
        match kind {
            "lane_crash" => Ok(FaultKind::LaneCrash {
                rank: num("rank")? as usize,
                step: num("step")? as usize,
            }),
            "delay_speculation" => Ok(FaultKind::DelaySpeculation {
                rank: num("rank")? as usize,
                steps: num("steps")? as usize,
            }),
            "daemon_shutdown" => Ok(FaultKind::DaemonShutdown {
                group: num("group")? as usize,
                after_turns: num("after_turns")?,
            }),
            "torn_checkpoint" => Ok(FaultKind::TornCheckpoint {
                at: num("at")? as usize,
            }),
            other => Err(format!("fault: unknown kind `{other}`")),
        }
    }
}

/// A reproducible set of faults for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed recorded for provenance (plans built by
    /// [`FaultPlan::seeded`] derive their choices from it).
    pub seed: u64,
    /// The faults to inject.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// Empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Plan with an explicit fault list.
    pub fn new(faults: Vec<FaultKind>) -> Self {
        Self { seed: 0, faults }
    }

    /// Derives a single-fault plan from `seed`: a lane crash on a
    /// pseudo-random rank within `world` at a pseudo-random step in
    /// `[1, total_steps)`. Uses a splitmix64 walk so the same seed
    /// always yields the same fault — no RNG state to checkpoint.
    pub fn seeded_lane_crash(seed: u64, world: usize, total_steps: usize) -> Self {
        assert!(world > 0 && total_steps > 1, "degenerate topology");
        let a = splitmix64(seed);
        let b = splitmix64(a);
        let rank = (a % world as u64) as usize;
        let step = 1 + (b % (total_steps as u64 - 1)) as usize;
        Self {
            seed,
            faults: vec![FaultKind::LaneCrash { rank, step }],
        }
    }

    /// Derives a multi-crash plan from `seed`: `count` lane crashes on
    /// pseudo-random ranks within `world` at `count` *distinct*
    /// pseudo-random steps in `[1, total_steps)`. Distinct steps mean
    /// each supervised attempt fires exactly one crash, so a recovery
    /// driver strips them one incident at a time. Deterministic in
    /// `seed`, like [`FaultPlan::seeded_lane_crash`].
    pub fn seeded_crashes(seed: u64, world: usize, total_steps: usize, count: usize) -> Self {
        assert!(
            world > 0 && total_steps > count,
            "degenerate topology: need more steps than crashes"
        );
        let mut z = seed;
        let mut steps = std::collections::BTreeSet::new();
        while steps.len() < count {
            z = splitmix64(z);
            steps.insert(1 + (z % (total_steps as u64 - 1)) as usize);
        }
        let faults = steps
            .into_iter()
            .map(|step| {
                z = splitmix64(z);
                FaultKind::LaneCrash {
                    rank: (z % world as u64) as usize,
                    step,
                }
            })
            .collect();
        Self { seed, faults }
    }

    /// Earliest step at which `rank` crashes, if the plan crashes it.
    /// Multi-crash plans fire earliest-first; later crashes on the
    /// same rank stay latent until earlier ones are stripped by a
    /// recovery driver.
    pub fn lane_crash_at(&self, rank: usize) -> Option<usize> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                FaultKind::LaneCrash { rank: r, step } if r == rank => Some(step),
                _ => None,
            })
            .min()
    }

    /// Number of leading steps on which `rank` must not post
    /// speculative gathers, if delayed by the plan.
    pub fn speculation_delay(&self, rank: usize) -> Option<usize> {
        self.faults.iter().find_map(|f| match *f {
            FaultKind::DelaySpeculation { rank: r, steps } if r == rank => Some(steps),
            _ => None,
        })
    }

    /// Earliest turn count after which daemon `group` self-terminates,
    /// if the plan kills it.
    pub fn daemon_fail_after(&self, group: usize) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                FaultKind::DaemonShutdown {
                    group: g,
                    after_turns,
                } if g == group => Some(after_turns),
                _ => None,
            })
            .min()
    }

    /// Whether the checkpoint written at unit boundary `unit` must be
    /// torn (truncated mid-write).
    pub fn torn_checkpoint_at(&self, unit: usize) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(*f, FaultKind::TornCheckpoint { at } if at == unit))
    }

    /// Whether the plan injects any fault at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// splitmix64 step — the standard 64-bit mix, good enough to spread a
/// user seed over (rank, step) choices deterministically.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_only_their_target() {
        let plan = FaultPlan::new(vec![
            FaultKind::LaneCrash { rank: 1, step: 7 },
            FaultKind::DelaySpeculation { rank: 0, steps: 3 },
            FaultKind::DaemonShutdown {
                group: 2,
                after_turns: 5,
            },
        ]);
        assert_eq!(plan.lane_crash_at(1), Some(7));
        assert_eq!(plan.lane_crash_at(0), None);
        assert_eq!(plan.speculation_delay(0), Some(3));
        assert_eq!(plan.speculation_delay(1), None);
        assert_eq!(plan.daemon_fail_after(2), Some(5));
        assert_eq!(plan.daemon_fail_after(0), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn seeded_plan_is_deterministic_and_in_range() {
        let a = FaultPlan::seeded_lane_crash(42, 4, 20);
        let b = FaultPlan::seeded_lane_crash(42, 4, 20);
        assert_eq!(a, b);
        match a.faults[0] {
            FaultKind::LaneCrash { rank, step } => {
                assert!(rank < 4);
                assert!((1..20).contains(&step));
            }
            _ => panic!("expected lane crash"),
        }
        // Different seeds explore different faults (probabilistic but
        // fixed here: these two seeds differ).
        let c = FaultPlan::seeded_lane_crash(43, 4, 20);
        assert_ne!(a.faults, c.faults);
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan::new(vec![FaultKind::DaemonShutdown {
            group: 0,
            after_turns: 9,
        }]);
        let s = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn every_fault_kind_roundtrips_through_json() {
        let plan = FaultPlan::new(vec![
            FaultKind::LaneCrash { rank: 1, step: 7 },
            FaultKind::DelaySpeculation { rank: 0, steps: 3 },
            FaultKind::DaemonShutdown {
                group: 2,
                after_turns: 5,
            },
            FaultKind::TornCheckpoint { at: 2 },
            FaultKind::LaneCrash { rank: 1, step: 11 },
        ]);
        let s = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn torn_checkpoint_parses_from_hand_written_json() {
        let plan: FaultPlan =
            serde_json::from_str(r#"{"seed":0,"faults":[{"kind":"torn_checkpoint","at":3}]}"#)
                .unwrap();
        assert_eq!(plan.faults, vec![FaultKind::TornCheckpoint { at: 3 }]);
        assert!(plan.torn_checkpoint_at(3));
        assert!(!plan.torn_checkpoint_at(2));
    }

    #[test]
    fn unknown_fault_kind_is_an_error_not_a_panic() {
        let r: Result<FaultPlan, _> =
            serde_json::from_str(r#"{"seed":0,"faults":[{"kind":"meteor_strike"}]}"#);
        assert!(r.is_err());
    }

    #[test]
    fn multi_crash_fires_earliest_first() {
        let plan = FaultPlan::new(vec![
            FaultKind::LaneCrash { rank: 1, step: 11 },
            FaultKind::LaneCrash { rank: 1, step: 7 },
        ]);
        assert_eq!(plan.lane_crash_at(1), Some(7));
    }

    #[test]
    fn seeded_crashes_are_deterministic_with_distinct_steps() {
        let a = FaultPlan::seeded_crashes(9, 4, 30, 3);
        let b = FaultPlan::seeded_crashes(9, 4, 30, 3);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 3);
        let steps: Vec<usize> = a
            .faults
            .iter()
            .map(|f| match *f {
                FaultKind::LaneCrash { rank, step } => {
                    assert!(rank < 4);
                    assert!((1..30).contains(&step));
                    step
                }
                _ => panic!("expected lane crash"),
            })
            .collect();
        let mut sorted = steps.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "steps must be distinct");
    }
}
