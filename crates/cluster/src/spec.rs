//! Cluster topology: `p` machines × `q` GPUs.

use serde::{Deserialize, Serialize};

/// A `p × q` cluster: ranks `0..p*q` are laid out machine-major
/// (machine 0 hosts ranks `0..q`, machine 1 hosts `q..2q`, …) exactly
/// like the trainer layout in the paper's Figure 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Machine count `p`.
    pub machines: usize,
    /// GPUs (trainers) per machine `q`.
    pub gpus_per_machine: usize,
}

impl ClusterSpec {
    /// Creates a spec.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(machines: usize, gpus_per_machine: usize) -> Self {
        assert!(
            machines >= 1 && gpus_per_machine >= 1,
            "cluster dims must be >= 1"
        );
        Self {
            machines,
            gpus_per_machine,
        }
    }

    /// The paper's largest testbed: 4 × g4dn.metal (8 GPUs each).
    pub fn paper_testbed() -> Self {
        Self::new(4, 8)
    }

    /// Total trainer count `p·q`.
    pub fn world(&self) -> usize {
        self.machines * self.gpus_per_machine
    }

    /// Machine hosting `rank`.
    pub fn machine_of(&self, rank: usize) -> usize {
        assert!(
            rank < self.world(),
            "rank {} out of world {}",
            rank,
            self.world()
        );
        rank / self.gpus_per_machine
    }

    /// True when both ranks share a machine (transfer stays on
    /// PCIe/NVLink instead of Ethernet).
    pub fn same_machine(&self, a: usize, b: usize) -> bool {
        self.machine_of(a) == self.machine_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_major_layout() {
        let c = ClusterSpec::new(2, 4);
        assert_eq!(c.world(), 8);
        assert_eq!(c.machine_of(0), 0);
        assert_eq!(c.machine_of(3), 0);
        assert_eq!(c.machine_of(4), 1);
        assert_eq!(c.machine_of(7), 1);
    }

    #[test]
    fn same_machine_symmetry() {
        let c = ClusterSpec::new(2, 4);
        assert!(c.same_machine(1, 2));
        assert!(!c.same_machine(3, 4));
        assert!(c.same_machine(5, 5));
    }

    #[test]
    fn paper_testbed_dims() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!((c.machines, c.gpus_per_machine, c.world()), (4, 8, 32));
    }

    #[test]
    #[should_panic(expected = "out of world")]
    fn rank_out_of_range_panics() {
        ClusterSpec::new(1, 2).machine_of(2);
    }
}
