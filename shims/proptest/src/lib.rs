//! Minimal offline shim for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! range and tuple strategies, [`strategy::Just`], `prop_map` /
//! `prop_flat_map`, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from upstream: inputs are sampled from a deterministic
//! per-test RNG (seeded from the test name), and failing cases are
//! reported without shrinking. Case counts honor
//! `ProptestConfig::with_cases`.

pub mod test_runner {
    //! Config, RNG, and failure plumbing used by the macros.

    /// Per-test configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Overrides the case count.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property case (no shrinking in this shim).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 stream, seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Builds the RNG for a named test.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Strategy trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let seed = self.inner.generate(rng);
            (self.f)(seed).generate(rng)
        }
    }

    /// Types with uniform range strategies.
    pub trait RangeValue: Copy {
        /// Uniform in `[low, high)`.
        fn half_open(low: Self, high: Self, rng: &mut TestRng) -> Self;
        /// Uniform in `[low, high]`.
        fn inclusive(low: Self, high: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn half_open(low: Self, high: Self, rng: &mut TestRng) -> Self {
                    assert!(low < high, "empty strategy range");
                    low + rng.below((high - low) as u64) as $t
                }
                fn inclusive(low: Self, high: Self, rng: &mut TestRng) -> Self {
                    assert!(low <= high, "empty strategy range");
                    low + rng.below((high - low) as u64 + 1) as $t
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! impl_range_float {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn half_open(low: Self, high: Self, rng: &mut TestRng) -> Self {
                    assert!(low < high, "empty strategy range");
                    low + (high - low) * rng.unit_f64() as $t
                }
                fn inclusive(low: Self, high: Self, rng: &mut TestRng) -> Self {
                    low + (high - low) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    impl_range_float!(f32, f64);

    impl<T: RangeValue> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::half_open(self.start, self.end, rng)
        }
    }

    impl<T: RangeValue> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::inclusive(*self.start(), *self.end(), rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable size specifications for [`vec`].
    pub trait IntoSizeRange {
        /// Resolves to `(min, max)` inclusive.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests (see module docs for supported syntax).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{:?} != {:?}: {}", __a, __b, format!($($fmt)+)),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "both sides equal {:?}",
                __a
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = (1usize..5, 0.0f32..1.0).prop_map(|(n, x)| vec![x; n]);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = TestRng::for_test("flat");
        let strat = (2u32..=6).prop_flat_map(|n| (Just(n), crate::collection::vec(0..n, 1..4)));
        for _ in 0..100 {
            let (n, xs) = strat.generate(&mut rng);
            assert!((2..=6).contains(&n));
            assert!(!xs.is_empty() && xs.len() < 4);
            assert!(xs.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn macro_generates_and_asserts(a in 0usize..10, (b, c) in (0u32..4, -1.0f32..1.0)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, b, "b {}", b);
            prop_assert!((-1.0..1.0).contains(&c), "c {}", c);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn always_fails(a in 0usize..10) {
                prop_assert!(a > 100, "a {}", a);
            }
        }
        always_fails();
    }
}
