//! Minimal offline shim for `rand_chacha`: a real ChaCha8 block
//! cipher core driving [`rand::RngCore`]. The keystream differs from
//! upstream's (`seed_from_u64` expansion and word order are our own),
//! which is fine for this workspace: determinism within a build is all
//! the experiments rely on.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds, seeded from a `u64`.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + constants + counter state (pre-block).
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column rounds.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for ((out, &w), &s) in self.block.iter_mut().zip(&working).zip(&self.state) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter = 0 (words 12/13), nonce = 0 (words 14/15).
        let mut rng = Self {
            state,
            block: [0; 16],
            cursor: 16,
        };
        rng.refill();
        rng.cursor = 0;
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn stream_is_not_degenerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(rng.next_u32());
        }
        assert!(seen.len() > 990, "only {} distinct words", seen.len());
    }

    #[test]
    fn clone_resumes_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
