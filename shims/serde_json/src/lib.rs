//! Minimal offline shim for `serde_json`: a JSON writer and a
//! recursive-descent parser over the serde shim's [`serde::Value`].

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses JSON bytes into `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(text)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing bytes at offset {}", p.pos)));
    }
    T::from_value(&v).map_err(Error)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if !n.is_finite() {
                return Err(Error(format!("non-finite number {n}")));
            }
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| Error(format!("bad number {text:?}: {e}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(Error("truncated \\u escape".into()));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|e| Error(e.to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error(format!("bad \\u escape {hex:?}: {e}")))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']', found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}', found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("wiki \"quoted\"\n".into())),
            ("n".into(), Value::Num(157474.0)),
            ("opt".into(), Value::Null),
            (
                "xs".into(),
                Value::Array(vec![Value::Num(-1.5), Value::Bool(true)]),
            ),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s).unwrap();
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let back = p.parse_value().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut s = String::new();
        write_value(&Value::Num(42.0), &mut s).unwrap();
        assert_eq!(s, "42");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<bool>("not json").is_err());
        assert!(from_str::<bool>("true garbage").is_err());
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        let s = to_string(&vec![1u32, 2, 3]).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
