//! Minimal offline shim for `bytes`: little-endian framing over plain
//! `Vec<u8>` storage — the subset `disttgl-data`'s persistence layer
//! uses.

use std::ops::Deref;

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies out the next `n` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }
}

/// Write end of a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable write buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        Self {
            data: b.data,
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(self.remaining() >= n, "Bytes: read past end");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(u64::MAX - 3);
        w.put_f32_le(-1.5);
        let mut r = Bytes::from(w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn over_read_panics() {
        let mut r = Bytes::from(vec![1u8, 2]);
        let _ = r.get_u32_le();
    }
}
