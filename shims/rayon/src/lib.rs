//! Minimal offline shim for `rayon`.
//!
//! `par_chunks_mut` degrades to the sequential `chunks_mut`. This is
//! semantically identical for the workspace's kernels (the outputs are
//! disjoint row chunks) and — because `disttgl_tensor::PAR_THRESHOLD`
//! keeps everyday kernels sequential anyway — performance-neutral for
//! every test and experiment profile in the repo.

pub mod prelude {
    /// Parallel mutable slice chunking (sequential in this shim).
    pub trait ParallelSliceMut<T> {
        /// Splits into mutable chunks of `chunk_size` (last may be
        /// shorter), exactly like `slice::chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_matches_chunks_mut() {
        let mut v = [1, 2, 3, 4, 5];
        v.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x += i as i32 * 10;
            }
        });
        assert_eq!(v, [1, 2, 13, 14, 25]);
    }
}
