//! Minimal offline shim for `serde`.
//!
//! Instead of upstream's visitor architecture, (de)serialization goes
//! through one dynamic [`Value`] tree — ample for the workspace's small
//! JSON headers and config records, and simple enough that the
//! `serde_derive` shim can generate code without `syn`/`quote`.

pub use serde_derive::{Deserialize, Serialize};

/// Dynamically typed serialization tree (JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON null (also the encoding of a missing field).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number. `u64` values above 2^53 lose precision; the
    /// workspace never serializes such values.
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field in derive-generated code; missing keys read as
/// [`Value::Null`] so `Option` fields tolerate omission.
pub fn __field<'v>(entries: &'v [(String, Value)], name: &str) -> &'v Value {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}

/// Serialization into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the dynamic tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, with a human-readable error on mismatch.
    fn from_value(v: &Value) -> Result<Self, String>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| format!("expected number, got {v:?}"))
            }
        }
    )*};
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {v:?}"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&(-1.5f64).to_value()).unwrap(), -1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Value::Num(3.0)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn missing_field_reads_null() {
        let obj = vec![("a".to_string(), Value::Num(1.0))];
        assert_eq!(__field(&obj, "a"), &Value::Num(1.0));
        assert_eq!(__field(&obj, "b"), &Value::Null);
    }

    #[test]
    fn vec_type_error_reported() {
        let err = Vec::<u32>::from_value(&Value::Bool(true)).unwrap_err();
        assert!(err.contains("expected array"), "{err}");
    }
}
