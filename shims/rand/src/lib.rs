//! Minimal offline shim for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], and
//! [`distributions::Uniform`]/[`distributions::Distribution`].

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`] by
    /// default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// User-facing random value generation.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform draw from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod distributions {
    //! The tiny distribution zoo the workspace needs.

    use crate::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type (uniform over its unit
    /// interval for floats).
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    /// Marker + helpers for types sampleable uniformly from a range.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform sample from `[low, high)`.
        fn sample_half_open<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Uniform sample from `[low, high]`.
        fn sample_inclusive<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    macro_rules! impl_int_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as u64).wrapping_sub(low as u64);
                    low.wrapping_add((rng.next_u64() % span) as $t)
                }
                fn sample_inclusive<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }
    impl_int_uniform!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! impl_float_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    low + (high - low) * u
                }
                fn sample_inclusive<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let u = (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                    low + (high - low) * u
                }
            }
        )*};
    }
    impl_float_uniform!(f32, f64);

    /// Ranges usable with [`Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: Rng>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: Rng>(self, rng: &mut R) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: Rng>(self, rng: &mut R) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }

    /// Uniform distribution over a fixed interval, reusable across
    /// draws.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            Self {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            Self {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng>(&self, rng: &mut R) -> T {
            if self.inclusive {
                T::sample_inclusive(self.low, self.high, rng)
            } else {
                T::sample_half_open(self.low, self.high, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::{Rng, RngCore};

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = Uniform::new_inclusive(-1.0f32, 1.0);
            let s = u.sample(&mut rng);
            assert!((-1.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
