//! Syn-free `#[derive(Serialize, Deserialize)]` shim.
//!
//! Parses the item's token stream by hand and supports exactly the
//! shapes this workspace derives on: non-generic structs with named
//! fields, and non-generic enums with unit variants. Anything else is
//! rejected with a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skips attribute token pairs (`#` + bracket group) starting at `i`;
/// returns the first non-attribute index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);

    // Skip visibility.
    if let TokenTree::Ident(id) = &tokens[i] {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!(
            "serde_derive shim: `{name}` must have a braced body (tuple/unit items unsupported)"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    }
}

fn parse_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        // Optional visibility.
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after `{field}`, got {other}"),
        }
        fields.push(field);
        // Consume the type up to the next comma at angle-depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other}"),
        };
        i += 1;
        if let Some(TokenTree::Group(_)) = tokens.get(i) {
            panic!("serde_derive shim: variant `{variant}` carries data (unsupported)");
        }
        variants.push(variant);
        // Skip to past the next comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Derives `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__field(entries, {f:?}))\
                             .map_err(|e| ::std::format!(\"{name}.{f}: {{e}}\"))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         let entries = v.as_object().ok_or_else(|| \
                             ::std::format!(\"{name}: expected object, got {{v:?}}\"))?;\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some({v:?}) => \
                                  ::std::result::Result::Ok({name}::{v}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         match v.as_str() {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(\
                                 ::std::format!(\"{name}: unknown variant {{other:?}}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated Deserialize impl must parse")
}
