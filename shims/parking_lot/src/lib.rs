//! Minimal offline shim for `parking_lot`: a [`Mutex`] with the
//! panic-free `lock()` signature, backed by `std::sync::Mutex`.
//! Poisoning is ignored (parking_lot has no poisoning), which matches
//! how the workspace uses it: plain data hand-off buffers.

use std::sync::TryLockError;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type (std's).
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
