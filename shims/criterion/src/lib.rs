//! Minimal offline shim for `criterion`.
//!
//! Times closures with plain `Instant` wall clocks and prints a
//! criterion-style one-line report per benchmark (median of the sample
//! means). No plots, no statistics beyond min/median/max, no baseline
//! storage — enough to compare kernels and trainers in this workspace.
//!
//! Honors `--quick`-style impatience via sample/time knobs, and
//! ignores the harness CLI args cargo passes (`--bench`, filters).

use std::time::{Duration, Instant};

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher::new(self);
        f(&mut bencher);
        bencher.report(name);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.criterion);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a bare parameter value.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        Self(p.to_string())
    }

    /// Id from a function name plus parameter.
    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", name.into(), p))
    }
}

/// Passed to the benchmark closure to drive iterations.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Collected per-iteration nanosecond estimates.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(c: &Criterion) -> Self {
        Self {
            sample_size: c.sample_size,
            measurement_time: c.measurement_time,
            warm_up_time: c.warm_up_time,
            samples: Vec::new(),
        }
    }

    /// Times `f`, repeating it enough to fill the measurement budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up and per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.warm_up_time || iters_done == 0 {
            std::hint::black_box(f());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

        // Split the measurement budget into sample_size batches.
        let budget = self.measurement_time.as_secs_f64();
        let total_iters = ((budget / per_iter.max(1e-9)) as u64).max(self.sample_size as u64);
        let batch = (total_iters / self.sample_size as u64).max(1);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Times with caller-controlled iteration counts: `f(iters)` must
    /// return the elapsed time of exactly `iters` iterations.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        // Estimate cost with a single iteration, then sample.
        let estimate = f(1).as_secs_f64().max(1e-9);
        let budget = self.measurement_time.as_secs_f64();
        let total_iters = ((budget / estimate) as u64).max(self.sample_size as u64);
        let batch = (total_iters / self.sample_size as u64).max(1);
        for _ in 0..self.sample_size {
            let d = f(batch);
            self.samples.push(d.as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let med = sorted[sorted.len() / 2];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}]",
            format_ns(min),
            format_ns(med),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }

    #[test]
    fn iter_custom_respects_iteration_count() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                let mut acc = 0u64;
                for i in 0..iters {
                    acc = acc.wrapping_add(i);
                }
                std::hint::black_box(acc);
                t0.elapsed()
            })
        });
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
