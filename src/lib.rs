//! # DistTGL-rs
//!
//! A Rust reproduction of **DistTGL: Distributed Memory-Based Temporal
//! Graph Neural Network Training** (SC 2023).
//!
//! This facade crate re-exports the workspace's sub-crates under one
//! namespace. See the README for a quickstart and `DESIGN.md` for the
//! full system inventory and per-experiment index.
//!
//! * [`tensor`] — dense f32 tensor kernels (the PyTorch replacement)
//! * [`nn`] — NN modules with hand-written backward passes
//! * [`graph`] — temporal graph storage + most-recent-k sampling
//! * [`data`] — synthetic dataset generators matching the paper's Table 2
//! * [`mem`] — node memory, mailbox, and the memory daemon (Algorithm 1)
//! * [`cluster`] — simulated distributed GPU cluster + collectives
//! * [`core`] — the DistTGL model, parallel schedulers, planner, trainer

pub use disttgl_cluster as cluster;
pub use disttgl_core as core;
pub use disttgl_data as data;
pub use disttgl_graph as graph;
pub use disttgl_mem as mem;
pub use disttgl_nn as nn;
pub use disttgl_tensor as tensor;
