//! Failure-injection and robustness tests: the system must degrade
//! **structurally** (typed errors, `RunResult::aborted`, truncated but
//! valid histories) or loudly (panics on internal invariants), never
//! silently corrupt training state. The deterministic fault plane
//! (`disttgl::cluster::FaultPlan`) injects lane crashes, delayed
//! speculation, and daemon shutdowns at seeded, reproducible points;
//! the tests here prove survivor consistency — everything a survivor
//! records up to an abort is bit-identical to a fault-free run — and
//! recovery: a crashed run's checkpoint resumes to the uninterrupted
//! oracle's exact trajectory.

use disttgl::cluster::{ClusterSpec, FaultKind, FaultPlan};
use disttgl::core::{
    train_distributed, train_supervised, AbortCause, BatchPreparer, MemoryAccess, ModelConfig,
    ParallelConfig, RetryPolicy, SuperviseError, TgnModel, TrainConfig,
};
use disttgl::data::generators;
use disttgl::graph::TCsr;
use disttgl::mem::{DaemonError, MemoryDaemon, MemoryState, MemoryWrite, VersionedReadout};
use disttgl::tensor::{seeded_rng, Matrix};
use std::time::{Duration, Instant};

fn tiny_model(d_edge: usize) -> ModelConfig {
    let mut mc = ModelConfig::compact(d_edge);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

/// A small 1×1×2 layout (2 sweeps) — the fault harness's standard
/// topology.
fn dist_cfg(epochs: usize, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::new(ParallelConfig::new(1, 1, 2));
    cfg.local_batch = 64;
    cfg.epochs = epochs;
    cfg.eval_negs = 9;
    cfg.eval_every_epoch = true;
    cfg.seed = seed;
    cfg.base_lr = 2e-2;
    cfg
}

/// A daemon abandoned mid-schedule must not hang on drop.
#[test]
fn abandoned_daemon_drops_cleanly() {
    let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 2), 2, 2, 100, 10);
    let _c0 = daemon.client(0);
    // No requests ever issued; drop triggers shutdown internally.
    drop(daemon);
}

/// Shutdown mid-read surfaces a structured [`DaemonError::Shutdown`]
/// instead of spinning forever, and the poisoned client fails fast on
/// every call after the first error.
#[test]
fn client_read_errors_on_shutdown() {
    let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 2), 1, 2, 100, 1);
    // Rank 1 is not the first turn owner, so its read stays pending.
    let c1 = daemon.client(1);
    let handle = std::thread::spawn(move || {
        let first = c1.try_read(&[0]).map(|_| ());
        let t0 = Instant::now();
        let second = c1.try_read(&[0]).map(|_| ());
        (first, second, t0.elapsed())
    });
    std::thread::sleep(Duration::from_millis(50));
    daemon.shutdown();
    let (first, second, fast) = handle.join().unwrap();
    assert_eq!(first.unwrap_err(), DaemonError::Shutdown);
    assert_eq!(second.unwrap_err(), DaemonError::Shutdown);
    assert!(
        fast < Duration::from_millis(20),
        "poisoned client must fail fast"
    );
}

/// A client deadline turns an unserved wait into a structured
/// [`DaemonError::Timeout`] instead of a hang.
#[test]
fn client_deadline_expires_to_timeout() {
    let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 2), 1, 2, 100, 1);
    // Rank 1 never gets its turn (rank 0 issues nothing).
    let mut c1 = daemon.client(1);
    c1.set_deadline(Some(Duration::from_millis(25)));
    let t0 = Instant::now();
    assert_eq!(c1.try_read(&[0]).unwrap_err(), DaemonError::Timeout);
    assert!(t0.elapsed() >= Duration::from_millis(25));
    // Poisoned: the retry fails without re-waiting the full deadline.
    let t1 = Instant::now();
    assert_eq!(c1.try_read(&[0]).unwrap_err(), DaemonError::Timeout);
    assert!(t1.elapsed() < Duration::from_millis(25));
    daemon.shutdown();
}

/// An injected lane crash aborts the whole world structurally: the
/// run returns (`aborted == true`, no panic, no hang) and everything
/// the surviving rank recorded before the abort is bit-identical to
/// the fault-free run — a crash truncates history, never corrupts it.
#[test]
fn lane_crash_aborts_world_with_consistent_survivor_history() {
    let d = generators::mooc(0.0015, 210);
    let mc = tiny_model(0);
    let cfg = dist_cfg(4, 7);
    let clean = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    assert!(!clean.aborted, "fault-free run completes");
    let total_steps = clean.loss_history.len();
    assert!(total_steps >= 4, "need room to crash mid-run");

    let crash_step = total_steps / 2;
    let cfg_f = cfg
        .clone()
        .with_faults(FaultPlan::new(vec![FaultKind::LaneCrash {
            rank: 1,
            step: crash_step,
        }]));
    let res = train_distributed(&d, &mc, &cfg_f, ClusterSpec::new(1, 2));
    assert!(res.aborted, "crash must be reported");
    assert!(
        res.loss_history.len() <= crash_step + 1,
        "history stops at the crash ({} recorded, crash at {crash_step})",
        res.loss_history.len()
    );
    assert!(
        !res.loss_history.is_empty(),
        "work before the crash is retained"
    );
    assert_eq!(
        res.loss_history[..],
        clean.loss_history[..res.loss_history.len()],
        "survivor's record must be a bit-identical prefix of the fault-free run"
    );
}

/// The seeded crash planner is deterministic: the same seed plans the
/// same fault, and the whole aborted run replays bit-identically.
#[test]
fn seeded_lane_crash_is_reproducible() {
    let d = generators::mooc(0.0015, 211);
    let mc = tiny_model(0);
    let cfg = dist_cfg(4, 8);
    let clean = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    let total_steps = clean.loss_history.len();

    let plan = FaultPlan::seeded_lane_crash(42, 2, total_steps);
    assert_eq!(
        plan.faults,
        FaultPlan::seeded_lane_crash(42, 2, total_steps).faults
    );
    let cfg_f = cfg.clone().with_faults(plan);
    let a = train_distributed(&d, &mc, &cfg_f, ClusterSpec::new(1, 2));
    let b = train_distributed(&d, &mc, &cfg_f, ClusterSpec::new(1, 2));
    assert!(a.aborted && b.aborted);
    assert_eq!(a.loss_history, b.loss_history);
    assert_eq!(a.memory_checksums, b.memory_checksums);
}

/// A memory daemon dying mid-epoch surfaces as a structured abort:
/// its trainers observe `DaemonError` (under the fault plane's default
/// deadline), propagate the abort through the collective, and the
/// whole world unwinds cleanly instead of hanging on the dead daemon.
#[test]
fn daemon_shutdown_mid_epoch_aborts_structurally() {
    let d = generators::mooc(0.0015, 212);
    let mc = tiny_model(0);
    let cfg = dist_cfg(4, 9).with_faults(FaultPlan::new(vec![FaultKind::DaemonShutdown {
        group: 0,
        after_turns: 3,
    }]));
    let res = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    assert!(res.aborted, "daemon death must be reported");
    assert!(res.loss_history.iter().all(|l| l.is_finite()));
}

/// Delayed speculation is a pure overlap perturbation: a lane whose
/// speculative gathers are suppressed for its first steps pays full
/// serialized reads instead, and the results are bit-identical — the
/// version contract holds under scheduling faults.
#[test]
fn delayed_speculation_is_bit_identical() {
    let d = generators::mooc(0.0015, 213);
    let mc = tiny_model(0);
    let cfg = dist_cfg(4, 10);
    let base = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    let cfg_f = cfg.clone().with_faults(FaultPlan::new(vec![
        FaultKind::DelaySpeculation { rank: 0, steps: 3 },
        FaultKind::DelaySpeculation { rank: 1, steps: 5 },
    ]));
    let delayed = train_distributed(&d, &mc, &cfg_f, ClusterSpec::new(1, 2));
    assert!(!delayed.aborted);
    assert_eq!(base.loss_history, delayed.loss_history);
    assert_eq!(base.memory_checksums, delayed.memory_checksums);
    assert_eq!(base.test_metric, delayed.test_metric);
}

/// The full recovery story: a run checkpoints at a sweep boundary,
/// crashes mid-sweep afterwards, and a resume from that checkpoint —
/// written by the *crashed* run — lands exactly on the uninterrupted
/// oracle's trajectory: losses, convergence points, final metric, and
/// memory digests all bit-identical.
#[test]
fn crash_recovery_resumes_to_oracle_trajectory() {
    let d = generators::mooc(0.0015, 214);
    let mc = tiny_model(0);
    let cfg = dist_cfg(4, 11);
    let oracle = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    assert!(!oracle.aborted);
    let steps_per_sweep = oracle.loss_history.len() / 2; // 2 sweeps
    assert!(steps_per_sweep >= 3);

    let dir = std::env::temp_dir().join("disttgl_crash_recovery_test");
    std::fs::remove_dir_all(&dir).ok();
    let dir_s = dir.to_str().unwrap();

    // Checkpoint every sweep; crash in the second sweep, after the
    // sweep-1 checkpoint landed.
    let cfg_crash = cfg
        .clone()
        .checkpoint_every(1, dir_s)
        .with_faults(FaultPlan::new(vec![FaultKind::LaneCrash {
            rank: 1,
            step: steps_per_sweep + 2,
        }]));
    let crashed = train_distributed(&d, &mc, &cfg_crash, ClusterSpec::new(1, 2));
    assert!(crashed.aborted);
    let ckpt = dir.join("ckpt_0001.bin");
    assert!(
        ckpt.exists(),
        "sweep-1 checkpoint must have landed before the crash"
    );

    let cfg_resume = cfg.clone().resume_from(ckpt.to_str().unwrap());
    let resumed = train_distributed(&d, &mc, &cfg_resume, ClusterSpec::new(1, 2));
    std::fs::remove_dir_all(&dir).ok();
    assert!(!resumed.aborted);
    assert_eq!(resumed.loss_history, oracle.loss_history);
    assert_eq!(resumed.test_metric, oracle.test_metric);
    assert_eq!(resumed.memory_checksums, oracle.memory_checksums);
    assert_eq!(resumed.convergence.len(), oracle.convergence.len());
    for (r, o) in resumed.convergence.iter().zip(&oracle.convergence) {
        assert_eq!(r.iteration, o.iteration);
        assert_eq!(r.metric, o.metric);
    }
}

/// A lane killed mid-speculation (posts a speculative gather, never
/// collects it, never takes its serialized turns again) must not
/// corrupt the version vector for surviving lanes: every serialized
/// read they complete stays consistent with a sequential replay, and
/// shutdown stays clean — a loud stop, not a hang or silent skew.
#[test]
fn lane_killed_mid_speculation_keeps_survivors_consistent() {
    fn write_of(nodes: Vec<u32>, fill: f32, ts: f32) -> MemoryWrite {
        let n = nodes.len();
        MemoryWrite {
            nodes,
            mem: Matrix::full(n, 1, fill),
            mem_ts: vec![ts; n],
            mail: Matrix::full(n, 1, fill * 2.0),
            mail_ts: vec![ts; n],
        }
    }

    // i = 1, j = 2: turn order R0 W0 R1 W1 R0 W0 …
    let daemon = MemoryDaemon::spawn(MemoryState::new(8, 1, 1), 1, 2, 6, 1);
    let c0 = daemon.client(0);
    let c1 = daemon.client(1);
    let mut reference = MemoryState::new(8, 1, 1);
    reference.reset(); // mirror the daemon's epoch-start reset
    let nodes: Vec<u32> = vec![0, 2, 4];

    // Turn 0 (rank 0): healthy speculative cycle for its next turn.
    let vr0 = c0.read_versioned(&nodes);
    assert_eq!(vr0.versions, reference.read_versioned(&nodes).versions);
    c0.speculate_read(&nodes, VersionedReadout::default());
    let tagged = c0.take_speculation();
    c0.write(write_of(vec![0], 1.0, 1.0));
    reference.write(&write_of(vec![0], 1.0, 1.0));

    // Turn 1 (rank 1): completes one healthy turn, then "dies" after
    // posting a speculation it will never collect.
    let r1 = c1.read(&nodes);
    assert_eq!(r1.mem, reference.read(&nodes).mem);
    c1.write(write_of(vec![2], 3.0, 2.0));
    reference.write(&write_of(vec![2], 3.0, 2.0));
    c1.speculate_read(&nodes, VersionedReadout::default());
    drop(c1); // the kill: speculation outstanding, no more turns

    // Turn 2 (rank 0, the survivor): its delta against the tagged
    // speculation must repair to exactly the serialized answer — the
    // dead lane's orphaned speculation didn't disturb the versions.
    let d = c0.read_delta(&nodes, &tagged.versions);
    assert!(!d.is_empty(), "both intervening writes hit the read set");
    let mut patched = tagged.readout;
    d.apply(&mut patched);
    let want = reference.read(&nodes);
    assert_eq!(patched.mem, want.mem);
    assert_eq!(patched.mem_ts, want.mem_ts);
    assert_eq!(patched.mail, want.mail);
    c0.write(write_of(vec![4], 5.0, 3.0));
    reference.write(&write_of(vec![4], 5.0, 3.0));

    // Turn 3 belongs to the dead rank: the daemon can only spin there.
    // Shutdown must unblock everything without corrupting the state
    // the survivors produced.
    std::thread::sleep(std::time::Duration::from_millis(20));
    daemon.shutdown();
    let (state, stats) = daemon.join();
    assert_eq!(state.read(&nodes).mem, reference.read(&nodes).mem);
    assert!(stats.reads_served >= 3);
    // The orphaned speculation was served (the daemon answers specs
    // while spinning) or the shutdown cut it off — either way no hang.
    assert!(stats.spec_reads_served <= 2);
}

/// Corrupting node memory with NaN must surface in the model's
/// non-finite checks rather than silently training on garbage.
#[test]
fn nan_memory_is_detectable() {
    let d = generators::wikipedia(0.004, 201);
    let csr = TCsr::build(&d.graph);
    let mc = tiny_model(d.edge_features.cols());
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());

    // Poison one node's memory.
    let mut poison = disttgl::mem::MemoryWrite {
        nodes: vec![d.graph.events()[0].src],
        mem: Matrix::full(1, mc.d_mem, f32::NAN),
        mem_ts: vec![1.0],
        mail: Matrix::full(1, mc.mail_dim(), 1.0),
        mail_ts: vec![1.0],
    };
    poison.mem.set(0, 0, f32::NAN);
    MemoryAccess::write(&mut mem, poison);

    let prep = BatchPreparer::new(&d, &csr, &mc);
    let batch = prep.prepare(0..32, &[], 1, &mut mem);
    assert!(
        batch.pos.readout.mem_has_non_finite(),
        "poison must be visible"
    );

    let mut rng = seeded_rng(1);
    let model = TgnModel::new(mc.clone(), &mut rng);
    let out = model.infer_step(&batch.pos, None, None);
    // The NaN propagates into the write-back, which is exactly what
    // the training loop's non-finite guard catches.
    assert!(out.write.mem.has_non_finite());
}

/// Mismatched cluster/parallel worlds must be rejected up front.
#[test]
#[should_panic(expected = "cluster world")]
fn world_mismatch_is_rejected() {
    let d = generators::mooc(0.001, 202);
    let mc = tiny_model(0);
    let cfg = TrainConfig::new(ParallelConfig::new(1, 1, 2));
    let _ = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 4));
}

/// Batch sizes larger than the training split still work (single
/// giant batch per epoch).
#[test]
fn oversized_batch_degenerates_gracefully() {
    let d = generators::mooc(0.001, 203);
    let mc = tiny_model(0);
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 1_000_000;
    cfg.epochs = 1;
    cfg.eval_negs = 5;
    cfg.eval_every_epoch = false;
    let res = disttgl::core::train_single(&d, &mc, &cfg);
    assert_eq!(res.loss_history.len(), 1);
    assert!(res.loss_history[0].is_finite());
}

/// Asserts a supervised run reproduced the fault-free oracle bit for
/// bit: losses, convergence curve, test metric, and final memory
/// checksums all equal.
fn assert_bit_identical(run: &disttgl::core::RunResult, oracle: &disttgl::core::RunResult) {
    assert!(!run.aborted);
    assert_eq!(run.loss_history, oracle.loss_history);
    assert_eq!(run.test_metric, oracle.test_metric);
    assert_eq!(run.memory_checksums, oracle.memory_checksums);
    assert_eq!(run.convergence.len(), oracle.convergence.len());
    for (r, o) in run.convergence.iter().zip(&oracle.convergence) {
        assert_eq!(r.iteration, o.iteration);
        assert_eq!(r.metric, o.metric);
    }
}

fn supervise_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("disttgl_supervised_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The supervisor handles a single lane crash with no operator in the
/// loop: no manual `--resume-from`, just the fault plan and a restart
/// budget — and the completed run is bit-identical to the oracle.
#[test]
fn supervised_single_crash_recovers_bit_identically() {
    let d = generators::mooc(0.0015, 220);
    let mc = tiny_model(0);
    let cfg = dist_cfg(4, 23);
    let oracle = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    assert!(!oracle.aborted);
    let sps = oracle.loss_history.len() / 2; // 2 sweeps
    assert!(sps >= 3);

    let dir = supervise_dir("single");
    let cfg_faulty = cfg
        .clone()
        .checkpoint_every(1, dir.to_str().unwrap())
        .with_faults(FaultPlan::new(vec![FaultKind::LaneCrash {
            rank: 1,
            step: sps + 2,
        }]));
    let run = train_supervised(
        &d,
        &mc,
        &cfg_faulty,
        ClusterSpec::new(1, 2),
        &RetryPolicy::default(),
    )
    .expect("supervisor completes within budget");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(run.incidents.len(), 1, "one crash, one incident");
    let inc = &run.incidents[0];
    assert_eq!(inc.cause, AbortCause::InjectedCrash);
    assert_eq!(inc.rank, Some(1));
    assert_eq!(inc.resumed_from_unit, Some(1), "rolled back to sweep 1");
    assert!(inc.steps_lost > 0 && inc.steps_lost <= sps + 2);
    assert_bit_identical(&run.result, &oracle);
}

/// A torn checkpoint write (crash mid-write at the final path) aborts
/// the run; the supervisor detects the bad digest, falls back to the
/// previous good checkpoint, and still finishes bit-identically.
#[test]
fn supervised_recovery_falls_back_past_torn_checkpoint() {
    let d = generators::mooc(0.0015, 221);
    let mc = tiny_model(0);
    let cfg = dist_cfg(6, 29); // 3 sweeps → checkpoint units 1 and 2
    let oracle = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    assert!(!oracle.aborted);

    let dir = supervise_dir("torn");
    let cfg_faulty = cfg
        .clone()
        .checkpoint_every(1, dir.to_str().unwrap())
        .with_faults(FaultPlan::new(vec![FaultKind::TornCheckpoint { at: 2 }]));
    let run = train_supervised(
        &d,
        &mc,
        &cfg_faulty,
        ClusterSpec::new(1, 2),
        &RetryPolicy::default(),
    )
    .expect("supervisor completes within budget");

    assert_eq!(run.incidents.len(), 1);
    assert_eq!(run.incidents[0].cause, AbortCause::TornCheckpoint);
    assert_eq!(
        run.incidents[0].resumed_from_unit,
        Some(1),
        "fell back past the torn unit-2 file to the good unit-1 one"
    );
    // The retried attempt replaced the torn file with a good one.
    assert!(
        disttgl::core::TrainCheckpoint::load(&dir.join("ckpt_0002.bin")).is_ok(),
        "unit-2 checkpoint rewritten cleanly on the resumed attempt"
    );
    std::fs::remove_dir_all(&dir).ok();
    assert_bit_identical(&run.result, &oracle);
}

/// Two crashes on distinct ranks in one plan: the supervisor recovers
/// one incident at a time (earliest trigger first) and completes.
#[test]
fn supervised_two_crashes_on_distinct_ranks() {
    let d = generators::mooc(0.0015, 222);
    let mc = tiny_model(0);
    let cfg = dist_cfg(6, 31); // 3 sweeps
    let oracle = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    assert!(!oracle.aborted);
    let sps = oracle.loss_history.len() / 3;
    assert!(sps >= 3);

    let dir = supervise_dir("two");
    let cfg_faulty = cfg
        .clone()
        .checkpoint_every(1, dir.to_str().unwrap())
        .with_faults(FaultPlan::new(vec![
            FaultKind::LaneCrash {
                rank: 0,
                step: sps + 1,
            },
            FaultKind::LaneCrash {
                rank: 1,
                step: 2 * sps + 1,
            },
        ]));
    let run = train_supervised(
        &d,
        &mc,
        &cfg_faulty,
        ClusterSpec::new(1, 2),
        &RetryPolicy::default(),
    )
    .expect("supervisor completes within budget");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(run.incidents.len(), 2);
    assert_eq!(run.incidents[0].cause, AbortCause::InjectedCrash);
    assert_eq!(run.incidents[0].rank, Some(0));
    assert_eq!(run.incidents[1].cause, AbortCause::InjectedCrash);
    assert_eq!(run.incidents[1].rank, Some(1));
    assert!(
        run.incidents[1].resumed_from_unit >= run.incidents[0].resumed_from_unit,
        "recovery points advance with the run"
    );
    assert_bit_identical(&run.result, &oracle);
}

/// More crashes than the restart budget covers: the supervisor gives
/// up with the typed `RestartBudgetExhausted` — incident history and
/// the last partial result attached — never a panic.
#[test]
fn restart_budget_exhaustion_is_a_typed_error() {
    let d = generators::mooc(0.0015, 223);
    let mc = tiny_model(0);
    let cfg = dist_cfg(4, 37).with_faults(FaultPlan::new(vec![
        FaultKind::LaneCrash { rank: 0, step: 2 },
        FaultKind::LaneCrash { rank: 1, step: 4 },
        FaultKind::LaneCrash { rank: 0, step: 6 },
    ]));
    // No checkpoint store configured: every restart is a fresh start —
    // still legal, just maximally expensive.
    let err = train_supervised(
        &d,
        &mc,
        &cfg,
        ClusterSpec::new(1, 2),
        &RetryPolicy {
            max_restarts: 1,
            backoff: Duration::ZERO,
        },
    )
    .expect_err("three crashes cannot fit one restart");
    match err {
        SuperviseError::RestartBudgetExhausted { incidents, last } => {
            assert_eq!(incidents.len(), 1, "budget allowed exactly one recovery");
            assert_eq!(incidents[0].cause, AbortCause::InjectedCrash);
            assert_eq!(
                incidents[0].resumed_from_unit, None,
                "no store, fresh start"
            );
            assert!(last.aborted, "the final attempt's partial result is kept");
        }
        other => panic!("expected RestartBudgetExhausted, got: {other}"),
    }
}

/// Headline: a seeded multi-crash plan PLUS a torn-checkpoint fault,
/// all recovered unsupervised, and the completed run is bit-identical
/// to the fault-free oracle.
#[test]
fn supervised_seeded_multi_crash_with_torn_checkpoint_matches_oracle() {
    let d = generators::mooc(0.0015, 224);
    let mc = tiny_model(0);
    let cfg = dist_cfg(6, 41); // 3 sweeps
    let oracle = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    assert!(!oracle.aborted);
    let total_steps = oracle.loss_history.len();

    let mut plan = FaultPlan::seeded_crashes(0xD157, 2, total_steps, 2);
    plan.faults.push(FaultKind::TornCheckpoint { at: 1 });
    let n_faults = plan.faults.len();

    let dir = supervise_dir("headline");
    let cfg_faulty = cfg
        .clone()
        .checkpoint_every(1, dir.to_str().unwrap())
        .with_faults(plan);
    let run = train_supervised(
        &d,
        &mc,
        &cfg_faulty,
        ClusterSpec::new(1, 2),
        &RetryPolicy {
            max_restarts: 5,
            backoff: Duration::ZERO,
        },
    )
    .expect("supervisor completes within budget");
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        !run.incidents.is_empty() && run.incidents.len() <= n_faults,
        "each incident strips at least one fault: {} incidents for {} faults",
        run.incidents.len(),
        n_faults
    );
    assert!(run
        .incidents
        .iter()
        .any(|i| i.cause == AbortCause::TornCheckpoint));
    assert_bit_identical(&run.result, &oracle);
}

/// Empty local slices (more lanes than events per batch) keep the
/// daemon protocol alive instead of deadlocking.
#[test]
fn more_lanes_than_events_does_not_deadlock() {
    let d = generators::mooc(0.001, 204);
    let mc = tiny_model(0);
    let mut cfg = TrainConfig::new(ParallelConfig::new(4, 1, 1));
    cfg.local_batch = 1; // global batch of 4 over tiny event counts
    cfg.epochs = 4;
    cfg.eval_negs = 5;
    cfg.eval_every_epoch = false;
    cfg.seed = 17;
    let res = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 4));
    assert!(res.test_metric.is_finite());
}
