//! Failure-injection and robustness tests: the system must degrade
//! loudly (panics with clear messages) or gracefully (documented
//! fallbacks), never silently corrupt training state.

use disttgl::cluster::ClusterSpec;
use disttgl::core::{
    train_distributed, BatchPreparer, MemoryAccess, ModelConfig, ParallelConfig, TgnModel,
    TrainConfig,
};
use disttgl::data::generators;
use disttgl::graph::TCsr;
use disttgl::mem::{MemoryDaemon, MemoryState};
use disttgl::tensor::{seeded_rng, Matrix};

fn tiny_model(d_edge: usize) -> ModelConfig {
    let mut mc = ModelConfig::compact(d_edge);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

/// A daemon abandoned mid-schedule must not hang on drop.
#[test]
fn abandoned_daemon_drops_cleanly() {
    let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 2), 2, 2, 100, 10);
    let _c0 = daemon.client(0);
    // No requests ever issued; drop triggers shutdown internally.
    drop(daemon);
}

/// Shutdown mid-read panics the client instead of spinning forever.
#[test]
fn client_read_panics_on_shutdown() {
    let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 2), 1, 2, 100, 1);
    // Rank 1 is not the first turn owner, so its read stays pending.
    let c1 = daemon.client(1);
    let handle = std::thread::spawn(move || {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c1.read(&[0])));
        result.is_err()
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    daemon.shutdown();
    assert!(handle.join().unwrap(), "client should panic, not hang");
}

/// Corrupting node memory with NaN must surface in the model's
/// non-finite checks rather than silently training on garbage.
#[test]
fn nan_memory_is_detectable() {
    let d = generators::wikipedia(0.004, 201);
    let csr = TCsr::build(&d.graph);
    let mc = tiny_model(d.edge_features.cols());
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());

    // Poison one node's memory.
    let mut poison = disttgl::mem::MemoryWrite {
        nodes: vec![d.graph.events()[0].src],
        mem: Matrix::full(1, mc.d_mem, f32::NAN),
        mem_ts: vec![1.0],
        mail: Matrix::full(1, mc.mail_dim(), 1.0),
        mail_ts: vec![1.0],
    };
    poison.mem.set(0, 0, f32::NAN);
    MemoryAccess::write(&mut mem, poison);

    let prep = BatchPreparer::new(&d, &csr, &mc);
    let batch = prep.prepare(0..32, &[], 1, &mut mem);
    assert!(
        batch.pos.readout.mem_has_non_finite(),
        "poison must be visible"
    );

    let mut rng = seeded_rng(1);
    let model = TgnModel::new(mc, &mut rng);
    let out = model.infer_step(&batch.pos, None, None);
    // The NaN propagates into the write-back, which is exactly what
    // the training loop's non-finite guard catches.
    assert!(out.write.mem.has_non_finite());
}

/// Mismatched cluster/parallel worlds must be rejected up front.
#[test]
#[should_panic(expected = "cluster world")]
fn world_mismatch_is_rejected() {
    let d = generators::mooc(0.001, 202);
    let mc = tiny_model(0);
    let cfg = TrainConfig::new(ParallelConfig::new(1, 1, 2));
    let _ = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 4));
}

/// Batch sizes larger than the training split still work (single
/// giant batch per epoch).
#[test]
fn oversized_batch_degenerates_gracefully() {
    let d = generators::mooc(0.001, 203);
    let mc = tiny_model(0);
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 1_000_000;
    cfg.epochs = 1;
    cfg.eval_negs = 5;
    cfg.eval_every_epoch = false;
    let res = disttgl::core::train_single(&d, &mc, &cfg);
    assert_eq!(res.loss_history.len(), 1);
    assert!(res.loss_history[0].is_finite());
}

/// Empty local slices (more lanes than events per batch) keep the
/// daemon protocol alive instead of deadlocking.
#[test]
fn more_lanes_than_events_does_not_deadlock() {
    let d = generators::mooc(0.001, 204);
    let mc = tiny_model(0);
    let mut cfg = TrainConfig::new(ParallelConfig::new(4, 1, 1));
    cfg.local_batch = 1; // global batch of 4 over tiny event counts
    cfg.epochs = 4;
    cfg.eval_negs = 5;
    cfg.eval_every_epoch = false;
    cfg.seed = 17;
    let res = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 4));
    assert!(res.test_metric.is_finite());
}
