//! Failure-injection and robustness tests: the system must degrade
//! loudly (panics with clear messages) or gracefully (documented
//! fallbacks), never silently corrupt training state.

use disttgl::cluster::ClusterSpec;
use disttgl::core::{
    train_distributed, BatchPreparer, MemoryAccess, ModelConfig, ParallelConfig, TgnModel,
    TrainConfig,
};
use disttgl::data::generators;
use disttgl::graph::TCsr;
use disttgl::mem::{MemoryDaemon, MemoryState, MemoryWrite, VersionedReadout};
use disttgl::tensor::{seeded_rng, Matrix};

fn tiny_model(d_edge: usize) -> ModelConfig {
    let mut mc = ModelConfig::compact(d_edge);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

/// A daemon abandoned mid-schedule must not hang on drop.
#[test]
fn abandoned_daemon_drops_cleanly() {
    let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 2), 2, 2, 100, 10);
    let _c0 = daemon.client(0);
    // No requests ever issued; drop triggers shutdown internally.
    drop(daemon);
}

/// Shutdown mid-read panics the client instead of spinning forever.
#[test]
fn client_read_panics_on_shutdown() {
    let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 2), 1, 2, 100, 1);
    // Rank 1 is not the first turn owner, so its read stays pending.
    let c1 = daemon.client(1);
    let handle = std::thread::spawn(move || {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c1.read(&[0])));
        result.is_err()
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    daemon.shutdown();
    assert!(handle.join().unwrap(), "client should panic, not hang");
}

/// A lane killed mid-speculation (posts a speculative gather, never
/// collects it, never takes its serialized turns again) must not
/// corrupt the version vector for surviving lanes: every serialized
/// read they complete stays consistent with a sequential replay, and
/// shutdown stays clean — a loud stop, not a hang or silent skew.
#[test]
fn lane_killed_mid_speculation_keeps_survivors_consistent() {
    fn write_of(nodes: Vec<u32>, fill: f32, ts: f32) -> MemoryWrite {
        let n = nodes.len();
        MemoryWrite {
            nodes,
            mem: Matrix::full(n, 1, fill),
            mem_ts: vec![ts; n],
            mail: Matrix::full(n, 1, fill * 2.0),
            mail_ts: vec![ts; n],
        }
    }

    // i = 1, j = 2: turn order R0 W0 R1 W1 R0 W0 …
    let daemon = MemoryDaemon::spawn(MemoryState::new(8, 1, 1), 1, 2, 6, 1);
    let c0 = daemon.client(0);
    let c1 = daemon.client(1);
    let mut reference = MemoryState::new(8, 1, 1);
    reference.reset(); // mirror the daemon's epoch-start reset
    let nodes: Vec<u32> = vec![0, 2, 4];

    // Turn 0 (rank 0): healthy speculative cycle for its next turn.
    let vr0 = c0.read_versioned(&nodes);
    assert_eq!(vr0.versions, reference.read_versioned(&nodes).versions);
    c0.speculate_read(&nodes, VersionedReadout::default());
    let tagged = c0.take_speculation();
    c0.write(write_of(vec![0], 1.0, 1.0));
    reference.write(&write_of(vec![0], 1.0, 1.0));

    // Turn 1 (rank 1): completes one healthy turn, then "dies" after
    // posting a speculation it will never collect.
    let r1 = c1.read(&nodes);
    assert_eq!(r1.mem, reference.read(&nodes).mem);
    c1.write(write_of(vec![2], 3.0, 2.0));
    reference.write(&write_of(vec![2], 3.0, 2.0));
    c1.speculate_read(&nodes, VersionedReadout::default());
    drop(c1); // the kill: speculation outstanding, no more turns

    // Turn 2 (rank 0, the survivor): its delta against the tagged
    // speculation must repair to exactly the serialized answer — the
    // dead lane's orphaned speculation didn't disturb the versions.
    let d = c0.read_delta(&nodes, &tagged.versions);
    assert!(!d.is_empty(), "both intervening writes hit the read set");
    let mut patched = tagged.readout;
    d.apply(&mut patched);
    let want = reference.read(&nodes);
    assert_eq!(patched.mem, want.mem);
    assert_eq!(patched.mem_ts, want.mem_ts);
    assert_eq!(patched.mail, want.mail);
    c0.write(write_of(vec![4], 5.0, 3.0));
    reference.write(&write_of(vec![4], 5.0, 3.0));

    // Turn 3 belongs to the dead rank: the daemon can only spin there.
    // Shutdown must unblock everything without corrupting the state
    // the survivors produced.
    std::thread::sleep(std::time::Duration::from_millis(20));
    daemon.shutdown();
    let (state, stats) = daemon.join();
    assert_eq!(state.read(&nodes).mem, reference.read(&nodes).mem);
    assert!(stats.reads_served >= 3);
    // The orphaned speculation was served (the daemon answers specs
    // while spinning) or the shutdown cut it off — either way no hang.
    assert!(stats.spec_reads_served <= 2);
}

/// Corrupting node memory with NaN must surface in the model's
/// non-finite checks rather than silently training on garbage.
#[test]
fn nan_memory_is_detectable() {
    let d = generators::wikipedia(0.004, 201);
    let csr = TCsr::build(&d.graph);
    let mc = tiny_model(d.edge_features.cols());
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());

    // Poison one node's memory.
    let mut poison = disttgl::mem::MemoryWrite {
        nodes: vec![d.graph.events()[0].src],
        mem: Matrix::full(1, mc.d_mem, f32::NAN),
        mem_ts: vec![1.0],
        mail: Matrix::full(1, mc.mail_dim(), 1.0),
        mail_ts: vec![1.0],
    };
    poison.mem.set(0, 0, f32::NAN);
    MemoryAccess::write(&mut mem, poison);

    let prep = BatchPreparer::new(&d, &csr, &mc);
    let batch = prep.prepare(0..32, &[], 1, &mut mem);
    assert!(
        batch.pos.readout.mem_has_non_finite(),
        "poison must be visible"
    );

    let mut rng = seeded_rng(1);
    let model = TgnModel::new(mc.clone(), &mut rng);
    let out = model.infer_step(&batch.pos, None, None);
    // The NaN propagates into the write-back, which is exactly what
    // the training loop's non-finite guard catches.
    assert!(out.write.mem.has_non_finite());
}

/// Mismatched cluster/parallel worlds must be rejected up front.
#[test]
#[should_panic(expected = "cluster world")]
fn world_mismatch_is_rejected() {
    let d = generators::mooc(0.001, 202);
    let mc = tiny_model(0);
    let cfg = TrainConfig::new(ParallelConfig::new(1, 1, 2));
    let _ = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 4));
}

/// Batch sizes larger than the training split still work (single
/// giant batch per epoch).
#[test]
fn oversized_batch_degenerates_gracefully() {
    let d = generators::mooc(0.001, 203);
    let mc = tiny_model(0);
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 1_000_000;
    cfg.epochs = 1;
    cfg.eval_negs = 5;
    cfg.eval_every_epoch = false;
    let res = disttgl::core::train_single(&d, &mc, &cfg);
    assert_eq!(res.loss_history.len(), 1);
    assert!(res.loss_history[0].is_finite());
}

/// Empty local slices (more lanes than events per batch) keep the
/// daemon protocol alive instead of deadlocking.
#[test]
fn more_lanes_than_events_does_not_deadlock() {
    let d = generators::mooc(0.001, 204);
    let mc = tiny_model(0);
    let mut cfg = TrainConfig::new(ParallelConfig::new(4, 1, 1));
    cfg.local_batch = 1; // global batch of 4 over tiny event counts
    cfg.epochs = 4;
    cfg.eval_negs = 5;
    cfg.eval_every_epoch = false;
    cfg.seed = 17;
    let res = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 4));
    assert!(res.test_metric.is_finite());
}
