//! Equivalence story for the L-layer embedding stack:
//!
//! * **`n_layers = 1` is the historical model.** The stacked
//!   forward/backward with one layer must be bit-identical across
//!   executors (sequential, pipelined, distributed) with
//!   `dedup_readout` and `speculative_gather` both on and off — the
//!   same invariants the pre-refactor suites pin, re-asserted here
//!   against the layer-stack code path, including through an
//!   explicitly spelled-out `neighbor_fanouts: [k]`.
//! * **`n_layers = 2` composes with everything.** The union-frontier
//!   fold is bit-identical to the per-occurrence oracle at depth 2,
//!   sequential and distributed 2-layer training track each other,
//!   and distributed 2-layer runs are bit-reproducible across reruns.

use disttgl::cluster::ClusterSpec;
use disttgl::core::{
    train_distributed, train_single, train_single_pipelined_traced, train_single_traced,
    BatchPreparer, MemoryAccess, ModelConfig, ParallelConfig, TgnModel, TrainConfig,
};
use disttgl::data::{generators, NegativeStore};
use disttgl::graph::TCsr;
use disttgl::mem::MemoryState;
use disttgl::tensor::seeded_rng;

fn tiny_model(d_edge: usize) -> ModelConfig {
    let mut mc = ModelConfig::compact(d_edge);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

fn quick_cfg(parallel: ParallelConfig, epochs: usize) -> TrainConfig {
    let mut cfg = TrainConfig::new(parallel);
    cfg.local_batch = 64;
    cfg.epochs = epochs;
    cfg.eval_negs = 9;
    cfg.seed = 11;
    cfg.base_lr = 1.2e-2;
    cfg
}

/// `n_layers = 1`, spelled both implicitly (the default) and as an
/// explicit one-entry fanout vector, across the sequential and
/// pipelined executors, with dedup on and off: every variant must be
/// bit-identical in losses, metrics, and final memory digests.
#[test]
fn one_layer_stack_is_bit_identical_across_executors_and_flags() {
    let d = generators::wikipedia(0.005, 411);
    let base = tiny_model(d.edge_features.cols());
    assert_eq!(base.n_layers, 1, "one layer is the default");
    let explicit = base.clone().with_fanouts(vec![base.n_neighbors]);
    let cfg = quick_cfg(ParallelConfig::single(), 3);

    let (seq, seq_mem) = train_single_traced(&d, &base, &cfg);
    for (label, mc) in [
        ("explicit fanouts", explicit.clone()),
        (
            "explicit fanouts, no dedup",
            explicit.without_dedup_readout(),
        ),
    ] {
        let (run, mem) = train_single_traced(&d, &mc, &cfg);
        let (piped, piped_mem) = train_single_pipelined_traced(&d, &mc, &cfg);
        // Pipelined ≡ sequential for the same config, bit for bit.
        assert_eq!(run.loss_history, piped.loss_history, "{label}: pipelined");
        assert_eq!(run.test_metric, piped.test_metric, "{label}: pipelined");
        assert_eq!(mem.checksum(), piped_mem.checksum(), "{label}: memory");
        if mc.dedup_readout {
            // Same math as the default-config run, bit for bit.
            assert_eq!(run.loss_history, seq.loss_history, "{label}: losses");
            assert_eq!(run.test_metric, seq.test_metric, "{label}: metric");
            assert_eq!(mem.checksum(), seq_mem.checksum(), "{label}: memory");
        } else {
            // The per-occurrence oracle shares the step-0 forward.
            assert_eq!(run.loss_history[0], seq.loss_history[0], "{label}");
        }
    }
}

/// `n_layers = 1` distributed, speculative gather on vs off: the
/// version-vector protocol stays bit-identical under the layer-stack
/// refactor (losses, metric, per-replica memory digests).
#[test]
fn one_layer_distributed_speculation_on_off_bit_identical() {
    let d = generators::wikipedia(0.005, 412);
    let mc = tiny_model(d.edge_features.cols()).with_layers(1);
    let mut cfg = quick_cfg(ParallelConfig::new(1, 1, 2), 4);
    assert!(cfg.speculative_gather, "speculation is the default");
    let spec = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    cfg.speculative_gather = false;
    let serial = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    assert_eq!(spec.loss_history, serial.loss_history);
    assert_eq!(spec.test_metric, serial.test_metric);
    assert_eq!(spec.memory_checksums, serial.memory_checksums);
    assert!(spec.daemon_spec_reads > 0, "speculation must have run");
}

/// Depth-2 union-frontier fold vs the per-occurrence oracle: forward
/// scores and delayed-update writes bit-identical while the stream
/// advances — the dedup equivalence story at `n_layers = 2`.
#[test]
fn two_layer_dedup_forward_bit_identical() {
    let d = generators::wikipedia(0.006, 413);
    let mc = tiny_model(d.edge_features.cols()).with_fanouts(vec![5, 3]);
    assert!(mc.dedup_readout);
    let mc_occ = mc.clone().without_dedup_readout();
    let csr = TCsr::build(&d.graph);
    let mut rng = seeded_rng(41);
    let model = TgnModel::new(mc.clone(), &mut rng);
    let prep_fold = BatchPreparer::new(&d, &csr, &mc);
    let prep_occ = BatchPreparer::new(&d, &csr, &mc_occ);
    let mut mem_fold = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    let mut mem_occ = mem_fold.clone();
    let store = NegativeStore::generate(&d.graph, 4 * 48, 2, 1, 9);

    for i in 0..4 {
        let range = i * 48..(i + 1) * 48;
        let negs = store.slice(0, range.clone());
        let folded = prep_fold.prepare(range.clone(), &[negs], 1, &mut mem_fold);
        let oracle = prep_occ.prepare(range, &[negs], 1, &mut mem_occ);
        // The folded gather covers both hops with strictly fewer rows.
        assert_eq!(folded.pos.hops.len(), 2);
        let occ_rows = disttgl::core::occurrence_rows(folded.pos.roots.len(), &folded.pos.hops);
        assert!(folded.pos.readout.rows() < occ_rows, "batch {i}: no fold");
        assert_eq!(oracle.pos.readout.rows(), occ_rows);

        let out_f = model.infer_step(&folded.pos, folded.negs.first(), None);
        let out_o = model.infer_step(&oracle.pos, oracle.negs.first(), None);
        assert_eq!(out_f.pos_scores, out_o.pos_scores, "batch {i}: pos scores");
        assert_eq!(out_f.neg_scores, out_o.neg_scores, "batch {i}: neg scores");
        assert_eq!(out_f.write.mem, out_o.write.mem, "batch {i}: write mem");
        assert_eq!(out_f.write.mail, out_o.write.mail, "batch {i}: write mail");
        MemoryAccess::write(&mut mem_fold, out_f.write);
        MemoryAccess::write(&mut mem_occ, out_o.write);
    }
}

/// Depth-2 stacked backward vs the per-occurrence oracle: one
/// training step from identical weights must produce matching
/// parameter gradients within float-summation-order tolerance (the
/// union fold sums each hop's occurrence gradients per unique node
/// *before* the GRU contractions instead of inside them), and the
/// folded 2-layer backward must itself be deterministic.
#[test]
fn two_layer_backward_matches_oracle_within_tolerance() {
    let d = generators::wikipedia(0.006, 417);
    let mc = tiny_model(d.edge_features.cols()).with_fanouts(vec![5, 3]);
    let mc_occ = mc.clone().without_dedup_readout();
    let csr = TCsr::build(&d.graph);
    let store = NegativeStore::generate(&d.graph, 128, 1, 1, 7);

    let grads_for = |cfg: &ModelConfig| {
        let mut rng = seeded_rng(43);
        let mut model = TgnModel::new(cfg.clone(), &mut rng);
        let prep = BatchPreparer::new(&d, &csr, cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        // Two batches so the second sees non-trivial memory/mails.
        let b0 = prep.prepare(0..64, &[store.slice(0, 0..64)], 1, &mut mem);
        let out = model.train_step(&b0.pos, Some(&b0.negs[0]), None);
        MemoryAccess::write(&mut mem, out.write);
        let b1 = prep.prepare(64..128, &[store.slice(0, 64..128)], 1, &mut mem);
        model.params.zero_grads();
        let out = model.train_step(&b1.pos, Some(&b1.negs[0]), None);
        (model.params.flatten_grads(), out.loss)
    };

    let (gf, lf) = grads_for(&mc);
    let (gf2, lf2) = grads_for(&mc);
    assert_eq!(gf, gf2, "folded 2-layer backward must be deterministic");
    assert_eq!(lf, lf2);

    let (go, lo) = grads_for(&mc_occ);
    assert_eq!(lf, lo, "2-layer forward loss is bit-identical");
    assert_eq!(gf.len(), go.len());
    let (mut num, mut den) = (0.0f64, 0.0f64);
    for (&a, &b) in gf.iter().zip(&go) {
        num += ((a - b) as f64).powi(2);
        den += (b as f64).powi(2);
    }
    let rel = (num / den.max(1e-30)).sqrt();
    assert!(
        rel < 1e-4,
        "2-layer gradient relative L2 deviation {rel} exceeds summation-order tolerance"
    );
}

/// A 2-layer model is a genuinely different function (depth reaches
/// the predictions) and still learns on the link task.
#[test]
fn two_layer_stack_differs_and_learns() {
    let d = generators::wikipedia(0.008, 414);
    let one = tiny_model(d.edge_features.cols());
    let two = one.clone().with_layers(2);
    let cfg = quick_cfg(ParallelConfig::single(), 4);

    let r1 = train_single(&d, &one, &cfg);
    let r2 = train_single(&d, &two, &cfg);
    assert_ne!(
        r1.loss_history[0], r2.loss_history[0],
        "hop-2 context never reached the loss"
    );
    assert!(r2.test_metric > 0.4, "2-layer test MRR {}", r2.test_metric);
    // The per-layer embed attribution sees both layers.
    assert_eq!(r2.timing.embed_layer_secs.len(), 2);
    assert!(r2.timing.embed_layer_secs.iter().all(|&s| s > 0.0));
}

/// 2-layer sequential vs distributed (memory parallelism): both
/// converge to comparable metrics, and the distributed run is
/// bit-reproducible across reruns (the acceptance criterion for
/// multi-layer distributed determinism).
#[test]
fn two_layer_sequential_vs_distributed_parity_and_reproducibility() {
    let d = generators::wikipedia(0.006, 415);
    let mc = tiny_model(d.edge_features.cols()).with_layers(2);
    let seq_cfg = quick_cfg(ParallelConfig::single(), 4);
    let seq = train_single(&d, &mc, &seq_cfg);

    let dist_cfg = quick_cfg(ParallelConfig::new(1, 1, 2), 4);
    let a = train_distributed(&d, &mc, &dist_cfg, ClusterSpec::new(1, 2));
    let b = train_distributed(&d, &mc, &dist_cfg, ClusterSpec::new(1, 2));
    assert_eq!(a.loss_history, b.loss_history, "2-layer rerun diverged");
    assert_eq!(a.test_metric, b.test_metric);
    assert_eq!(a.memory_checksums, b.memory_checksums);

    assert!(seq.test_metric > 0.3, "sequential MRR {}", seq.test_metric);
    assert!(a.test_metric > 0.3, "distributed MRR {}", a.test_metric);
    assert!(
        (seq.test_metric - a.test_metric).abs() < 0.2,
        "2-layer convergence parity: seq {} vs dist {}",
        seq.test_metric,
        a.test_metric
    );
}

/// Classification task at depth 2: the stack trains through the
/// multi-label head as well.
#[test]
fn two_layer_classification_trains() {
    let d = generators::gdelt(2.5e-5, 416);
    let mc = tiny_model(d.edge_features.cols())
        .with_classes(d.num_classes())
        .with_fanouts(vec![4, 2]);
    let cfg = quick_cfg(ParallelConfig::single(), 2);
    let res = train_single(&d, &mc, &cfg);
    assert!((0.0..=1.0).contains(&res.test_metric));
    assert!(res.loss_history.iter().all(|l| l.is_finite()));
}
