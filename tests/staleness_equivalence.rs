//! The bounded-staleness contract (`TrainConfig::staleness_bound`,
//! ROADMAP's MSPipe item — the repo's first intentional exactness/speed
//! trade) ships with the same rigor as the exact equivalence suites:
//!
//! * `k = 0` routes every Acquire through the bounded machinery but
//!   admits nothing — a stale row has version lag ≥ 1 — so the run is
//!   **bit-identical** to the exact oracle (both tasks, 1×1×2 and
//!   2×2×2, asserted below on losses, metrics, and memory digests).
//! * `k > 0` is *not* replay-deterministic (which rows are admitted
//!   depends on when the daemon served the speculation); the structural
//!   guarantee is per-row — every admitted value is within `k` writes
//!   of the serialized read (proptested at the `MemoryState` level) —
//!   and the empirical guarantee is a seeded accuracy band: |ΔMRR| vs
//!   the exact oracle stays within STALENESS_MRR_BAND at small k.
//! * `DaemonStats::rows_read` stays invariant under both speculation
//!   and the staleness bound (each bounded turn logically serves its
//!   full request), asserted directly.

use disttgl::cluster::ClusterSpec;
use disttgl::core::{
    train_distributed, ModelConfig, ParallelConfig, RunResult, StalenessCompensation, TrainConfig,
};
use disttgl::data::generators;
use disttgl::mem::{MemoryState, MemoryWrite};
use disttgl::tensor::Matrix;
use proptest::prelude::*;

/// Documented accuracy band for the seeded small-k test: on the tiny
/// equivalence-suite datasets, |ΔMRR| between an exact run and a
/// bounded-staleness run at k ≤ 4 stays within this bound. The band is
/// deliberately generous — admission is timing-dependent, and the tiny
/// runs are high-variance — but it pins the failure mode that matters:
/// bounded staleness must degrade accuracy gradually, never collapse it.
const STALENESS_MRR_BAND: f64 = 0.15;

fn tiny_model(d_edge: usize) -> ModelConfig {
    let mut mc = ModelConfig::compact(d_edge);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

fn cfg_for(parallel: ParallelConfig, epochs: usize, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::new(parallel);
    cfg.local_batch = 50;
    cfg.epochs = epochs;
    cfg.eval_negs = 9;
    cfg.eval_every_epoch = true;
    cfg.seed = seed;
    cfg.base_lr = 1.2e-2;
    cfg
}

fn assert_bit_identical(bounded: &RunResult, exact: &RunResult) {
    assert!(!bounded.loss_history.is_empty());
    assert_eq!(
        bounded.loss_history, exact.loss_history,
        "loss history diverged"
    );
    assert_eq!(
        bounded.test_metric, exact.test_metric,
        "test metric diverged"
    );
    assert_eq!(bounded.convergence.len(), exact.convergence.len());
    for (a, b) in bounded.convergence.iter().zip(&exact.convergence) {
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.metric, b.metric, "validation metric diverged");
    }
    assert_eq!(
        bounded.memory_checksums, exact.memory_checksums,
        "final node memory diverged"
    );
    // Satellite invariant: `rows_read` counts logical rows served at
    // serialized turns, so it is invariant under speculation *and*
    // under the staleness bound.
    assert_eq!(bounded.daemon_rows_read, exact.daemon_rows_read);
    assert_eq!(bounded.daemon_rows_written, exact.daemon_rows_written);
}

/// k = 0 ≡ exact oracle, link prediction, epoch parallelism (1×1×2):
/// the continue passes open a real speculation window, so the bounded
/// path genuinely runs — and admits nothing.
#[test]
fn staleness_bound_zero_is_bit_identical_link_prediction() {
    let d = generators::wikipedia(0.005, 611);
    let mc = tiny_model(d.edge_features.cols());
    let exact_cfg = cfg_for(ParallelConfig::new(1, 1, 2), 4, 611);
    let bounded_cfg = exact_cfg.clone().staleness_bound(0);

    let exact = train_distributed(&d, &mc, &exact_cfg, ClusterSpec::new(1, 2));
    let bounded = train_distributed(&d, &mc, &bounded_cfg, ClusterSpec::new(1, 2));

    assert_bit_identical(&bounded, &exact);
    // The bounded machinery must actually have served turns...
    assert!(
        bounded.daemon_bounded_reads > 0,
        "no bounded repair turns served — the k=0 identity is vacuous"
    );
    // ...and admitted nothing at k = 0.
    assert_eq!(bounded.daemon_stale_rows_admitted, 0);
    assert_eq!(bounded.daemon_stale_lag_max, 0);
    // Exact runs never touch the bounded path.
    assert_eq!(exact.daemon_bounded_reads, 0);
}

/// k = 0 ≡ exact oracle, edge classification, all three axes (2×2×2).
#[test]
fn staleness_bound_zero_is_bit_identical_edge_classification_ijk() {
    let d = generators::gdelt(2.0e-5, 612);
    let mc = tiny_model(d.edge_features.cols()).with_classes(d.num_classes());
    let exact_cfg = cfg_for(ParallelConfig::new(2, 2, 2), 8, 612);
    let bounded_cfg = exact_cfg.clone().staleness_bound(0);

    let exact = train_distributed(&d, &mc, &exact_cfg, ClusterSpec::new(2, 4));
    let bounded = train_distributed(&d, &mc, &bounded_cfg, ClusterSpec::new(2, 4));

    assert_bit_identical(&bounded, &exact);
    assert!(bounded.daemon_bounded_reads > 0);
    assert_eq!(bounded.daemon_stale_rows_admitted, 0);
}

/// Seeded accuracy band at small k: the relaxed mode may drift, but
/// |ΔMRR| vs the exact oracle stays within the documented band, the
/// realized lag respects the bound, and the staleness accounting is
/// self-consistent. Also covers the SimilarityBlend compensation path.
#[test]
fn small_k_stays_within_accuracy_band() {
    let d = generators::wikipedia(0.005, 613);
    let mc = tiny_model(d.edge_features.cols());
    let exact_cfg = cfg_for(ParallelConfig::new(1, 1, 2), 4, 613);
    let exact = train_distributed(&d, &mc, &exact_cfg, ClusterSpec::new(1, 2));

    for comp in [
        StalenessCompensation::None,
        StalenessCompensation::SimilarityBlend,
    ] {
        let bound = 4u64;
        let cfg = exact_cfg
            .clone()
            .staleness_bound(bound)
            .with_staleness_compensation(comp);
        let run = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
        assert!(!run.aborted);
        let delta = (run.test_metric - exact.test_metric).abs();
        assert!(
            delta <= STALENESS_MRR_BAND,
            "{comp:?}: |ΔMRR| = {delta:.4} beyond the documented band {STALENESS_MRR_BAND}"
        );
        // Realized staleness respects the configured bound.
        assert!(run.daemon_stale_lag_max <= bound);
        // Lag accounting: mean lag well-defined and ≤ max.
        if run.daemon_stale_rows_admitted > 0 {
            let mean = run.daemon_stale_lag_sum as f64 / run.daemon_stale_rows_admitted as f64;
            assert!(mean >= 1.0 && mean <= run.daemon_stale_lag_max as f64);
        }
        // rows_read invariance holds even when repairs are skipped
        // (the satellite-6 counter assertion at k > 0).
        assert_eq!(run.daemon_rows_read, exact.daemon_rows_read);
        assert_eq!(run.daemon_rows_written, exact.daemon_rows_written);
        // Every speculation is consumed by exactly one bounded turn,
        // and bounded turns count into the delta-turn total.
        assert_eq!(run.daemon_bounded_reads, run.daemon_delta_reads);
        assert_eq!(run.daemon_spec_reads, run.daemon_delta_reads);
        // Skipped + paid never exceeds what speculation gathered.
        assert!(
            run.daemon_stale_rows_admitted + run.daemon_delta_rows <= run.daemon_spec_rows,
            "staleness accounting exceeds speculated rows"
        );
    }
}

#[derive(Clone, Debug)]
struct Step {
    node: u32,
    value: f32,
    ts: f32,
}

fn steps(n: usize, nodes: u32) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0..nodes, -10.0f32..10.0, 0.0f32..100.0).prop_map(|(node, value, ts)| Step {
            node,
            value,
            ts,
        }),
        n..=n,
    )
}

fn write_of(step: &Step, d_mem: usize, mail_dim: usize) -> MemoryWrite {
    MemoryWrite {
        nodes: vec![step.node],
        mem: Matrix::full(1, d_mem, step.value),
        mem_ts: vec![step.ts],
        mail: Matrix::full(1, mail_dim, step.value * 2.0),
        mail_ts: vec![step.ts],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The structural per-row guarantee of `repair_lagged`: for any
    /// write script, tag point, and bound, every row the bounded
    /// repair *skips* is within `bound` versions of the serialized
    /// read, and every row it does not skip is bit-identical to the
    /// serialized read. With `bound = 0` the whole readout equals the
    /// serialized read.
    #[test]
    fn skipped_rows_are_within_bound_of_serialized_read(
        pre in steps(6, 5),
        post in steps(8, 5),
        read_set in proptest::collection::vec(0u32..5, 1..6),
        bound in 0u64..6,
    ) {
        let (d_mem, mail_dim) = (2usize, 3usize);
        let mut s = MemoryState::new(5, d_mem, mail_dim);
        for step in &pre {
            s.write(&write_of(step, d_mem, mail_dim));
        }
        let tagged = s.read_versioned(&read_set);
        for step in &post {
            s.write(&write_of(step, d_mem, mail_dim));
        }

        let mut out = tagged.readout.clone();
        let outcome = s.repair_lagged(&read_set, &tagged.versions, &mut out, bound);
        let serialized = s.read(&read_set);

        // Admitted rows: stale, and within `bound` versions of the
        // serialized read (the bounded-staleness contract).
        for &r in &outcome.admitted_rows {
            let r = r as usize;
            let node = read_set[r] as usize;
            let lag = s.node_versions()[node] - tagged.versions[r];
            prop_assert!(lag >= 1, "admitted row {} was not stale", r);
            prop_assert!(lag <= bound, "admitted row {} lag {} > bound {}", r, lag, bound);
        }
        prop_assert_eq!(outcome.admitted_rows.len(), outcome.admitted_stale);
        prop_assert!(outcome.max_lag <= bound);

        // Every non-admitted row equals the serialized read bit for bit.
        for r in 0..read_set.len() {
            if outcome.admitted_rows.contains(&(r as u32)) {
                continue;
            }
            prop_assert_eq!(out.mem.row(r), serialized.mem.row(r), "mem row {}", r);
            prop_assert_eq!(out.mail.row(r), serialized.mail.row(r), "mail row {}", r);
            prop_assert_eq!(out.mem_ts[r], serialized.mem_ts[r]);
            prop_assert_eq!(out.mail_ts[r], serialized.mail_ts[r]);
        }
        if bound == 0 {
            prop_assert_eq!(outcome.admitted_stale, 0);
            prop_assert_eq!(&out.mem, &serialized.mem);
            prop_assert_eq!(&out.mail, &serialized.mail);
        }
    }

    /// A reset between tag and repair forces every row to repair, no
    /// matter how large the bound: pre-reset values are semantically
    /// from a finished epoch, never merely stale.
    #[test]
    fn reset_always_forces_repair(
        pre in steps(6, 5),
        bound in 0u64..1_000_000,
    ) {
        let (d_mem, mail_dim) = (2usize, 2usize);
        let mut s = MemoryState::new(5, d_mem, mail_dim);
        for step in &pre {
            s.write(&write_of(step, d_mem, mail_dim));
        }
        let read_set: Vec<u32> = (0..5).collect();
        let tagged = s.read_versioned(&read_set);
        s.reset();

        let mut out = tagged.readout.clone();
        let outcome = s.repair_lagged(&read_set, &tagged.versions, &mut out, bound);
        prop_assert_eq!(outcome.admitted_stale, 0, "admitted a pre-reset row");
        let serialized = s.read(&read_set);
        prop_assert_eq!(&out.mem, &serialized.mem);
        prop_assert_eq!(&out.mail, &serialized.mail);
    }
}
