//! The speculative daemon-overlap protocol (`TrainConfig::
//! speculative_gather`, default on) must be *numerically invisible*:
//! a distributed run whose lanes gather early and repair via deltas
//! produces the same losses, the same metrics, and the same final
//! node memory as the serialized oracle that reads everything in its
//! Acquire turn. The version contract makes the patched block
//! bit-identical to a serialized read, so every comparison here is
//! exact — any divergence is a protocol bug, not noise.

use disttgl::cluster::ClusterSpec;
use disttgl::core::{train_distributed, ModelConfig, ParallelConfig, RunResult, TrainConfig};
use disttgl::data::generators;

fn tiny_model(d_edge: usize) -> ModelConfig {
    let mut mc = ModelConfig::compact(d_edge);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

fn cfg_for(parallel: ParallelConfig, epochs: usize, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::new(parallel);
    cfg.local_batch = 50;
    cfg.epochs = epochs;
    cfg.eval_negs = 9;
    cfg.eval_every_epoch = true;
    cfg.seed = seed;
    cfg.base_lr = 1.2e-2;
    cfg
}

fn assert_bit_identical(on: &RunResult, off: &RunResult) {
    assert!(!on.loss_history.is_empty());
    assert_eq!(on.loss_history, off.loss_history, "loss history diverged");
    assert_eq!(on.test_metric, off.test_metric, "test metric diverged");
    assert_eq!(on.convergence.len(), off.convergence.len());
    for (a, b) in on.convergence.iter().zip(&off.convergence) {
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.metric, b.metric, "validation metric diverged");
    }
    // Final node memory, per replica: content digests must match bit
    // for bit (the checksum folds raw f32 bit patterns).
    assert_eq!(
        on.memory_checksums, off.memory_checksums,
        "final node memory diverged"
    );
    // Logical read/write volume through the daemons is invariant (a
    // delta read accounts for its full request).
    assert_eq!(on.daemon_rows_read, off.daemon_rows_read);
    assert_eq!(on.daemon_rows_written, off.daemon_rows_written);
}

/// Link prediction, epoch parallelism (j = 2): the continue passes are
/// exactly the speculation window the protocol targets.
#[test]
fn speculative_gather_matches_serialized_link_prediction() {
    let d = generators::wikipedia(0.005, 311);
    let mc = tiny_model(d.edge_features.cols());
    let mut cfg = cfg_for(ParallelConfig::new(1, 2, 1), 4, 311);

    assert!(cfg.speculative_gather, "speculation is the default");
    let on = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    cfg.speculative_gather = false;
    let off = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));

    assert_bit_identical(&on, &off);
    // The speculative run must actually have speculated (j = 2 gives
    // every lane a full continue-pass window).
    assert!(on.daemon_spec_reads > 0, "no speculations served");
    assert_eq!(off.daemon_spec_reads, 0);
    assert_eq!(off.daemon_delta_reads, 0);
}

/// Edge classification (no negative store — the empty-negatives code
/// path), with mini-batch parallelism in the mix.
#[test]
fn speculative_gather_matches_serialized_edge_classification() {
    let d = generators::gdelt(2.0e-5, 312);
    let mc = tiny_model(d.edge_features.cols()).with_classes(d.num_classes());
    let mut cfg = cfg_for(ParallelConfig::new(2, 2, 1), 4, 312);

    let on = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 4));
    cfg.speculative_gather = false;
    let off = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 4));

    assert_bit_identical(&on, &off);
    assert!(on.daemon_spec_reads > 0, "no speculations served");
}

/// The speculative run must also equal the fully serialized oracle
/// (prefetch off entirely), across all three parallelism axes at once
/// — including multiple memory replicas, whose checksums are compared
/// replica by replica.
#[test]
fn speculative_gather_matches_full_oracle_ijk() {
    let d = generators::wikipedia(0.006, 313);
    let mc = tiny_model(d.edge_features.cols());
    let mut cfg = cfg_for(ParallelConfig::new(2, 2, 2), 8, 313);

    let on = train_distributed(&d, &mc, &cfg, ClusterSpec::new(2, 4));
    assert_eq!(on.memory_checksums.len(), 2, "one digest per replica");
    cfg.pipeline_prefetch = false; // implies no speculation either
    let oracle = train_distributed(&d, &mc, &cfg, ClusterSpec::new(2, 4));

    assert_bit_identical(&on, &oracle);
}

/// Deltas ship at most what speculation gathered, and the measured
/// stale fraction is sane (the protocol's accounting invariants).
#[test]
fn delta_accounting_is_consistent() {
    let d = generators::wikipedia(0.005, 314);
    let mc = tiny_model(d.edge_features.cols());
    let cfg = cfg_for(ParallelConfig::new(1, 2, 1), 4, 314);

    let run = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
    assert!(run.daemon_spec_reads > 0);
    assert_eq!(
        run.daemon_spec_reads, run.daemon_delta_reads,
        "every speculation is consumed by exactly one delta"
    );
    assert!(run.daemon_delta_rows <= run.daemon_spec_rows);
    // Speculative gathers happen off-turn; the serialized turns saw
    // the same logical volume as ever.
    assert!(run.daemon_rows_read >= run.daemon_spec_rows);
}
