//! Serving-plane equivalence: the streaming `core::serve` session is a
//! **re-ordering** of offline evaluation's arithmetic, never a new
//! approximation.
//!
//! The contract (ISSUE 5): ingest an event prefix through
//! `ServeSession`, then walk a range with `ingest_scored` at the
//! offline oracle's batch boundaries — every score, the task metric,
//! and the final node-memory digest must be **bit-identical** to
//! `evaluate`'s offline replay over the same events on a frozen
//! `TCsr`. Pinned here for both tasks (link prediction, edge
//! classification), at 1- and 2-layer stacks, with the folded readout
//! on and off.

use disttgl::core::serve::{QueryRequest, ServeSession};
use disttgl::core::{
    evaluate, replay_memory, BatchPreparer, InferenceEngine, ModelConfig, TgnModel,
};
use disttgl::data::{generators, Dataset, EvalNegatives, Task};
use disttgl::graph::{batching, TCsr};
use disttgl::mem::MemoryState;
use disttgl::nn::loss;
use disttgl::tensor::seeded_rng;

const BATCH: usize = 50;
const EVAL_NEGS: usize = 9;
const NEG_SEED: u64 = 77;

fn tiny_model(d_edge: usize) -> ModelConfig {
    let mut mc = ModelConfig::compact(d_edge);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

/// Eval window: second quarter → mid-stream, so both the replayed
/// prefix and the scored range are non-trivial.
fn window(d: &Dataset) -> (usize, usize) {
    let n = d.graph.num_events();
    assert!(n >= 200, "dataset too small for the window ({n} events)");
    (n / 2, (n / 2 + 200).min(n))
}

/// Offline oracle scores for a link-prediction range: the exact loop
/// `evaluate` runs (same negative draws, same batch boundaries),
/// keeping the raw per-event scores that `EvalResult` folds away.
#[allow(clippy::too_many_arguments)]
fn oracle_link_scores(
    model: &TgnModel,
    cfg: &ModelConfig,
    d: &Dataset,
    csr: &TCsr,
    mem: &mut MemoryState,
    start: usize,
    end: usize,
) -> (Vec<f32>, Vec<f32>) {
    let prep = BatchPreparer::new(d, csr, cfg);
    let mut engine = InferenceEngine::new();
    let mut sampler = EvalNegatives::new(&d.graph, NEG_SEED);
    let mut pos_all = Vec::new();
    let mut neg_all = Vec::new();
    for batch_range in batching::chronological_batches(start..end, BATCH) {
        let events = &d.graph.events()[batch_range.clone()];
        let negs: Vec<u32> = events
            .iter()
            .flat_map(|e| sampler.draw_excluding(EVAL_NEGS, e.dst))
            .collect();
        let prepared = prep.prepare(batch_range, &[&negs], EVAL_NEGS, mem);
        let out = engine.infer_step(model, &prepared.pos, Some(&prepared.negs[0]), None);
        pos_all.extend_from_slice(&out.pos_scores);
        neg_all.extend_from_slice(&out.neg_scores);
        mem.write(&out.write);
    }
    (pos_all, neg_all)
}

/// The serve-vs-oracle drive for one link-prediction configuration.
fn assert_link_serve_equivalence(mc: ModelConfig, model_seed: u64) {
    let d = generators::wikipedia(0.005, 31);
    let csr = TCsr::build(&d.graph);
    let mut rng = seeded_rng(model_seed);
    let model = TgnModel::new(mc.clone(), &mut rng);
    let (start, end) = window(&d);

    // Oracle: replay the prefix offline, then walk the range through
    // the full scored forward; also the public `evaluate` for the
    // metric (same seed → same negative draws).
    let mut mem_o = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    replay_memory(&model, &mc, &d, &csr, &mut mem_o, None, 0..start, BATCH);
    let prefix_checksum = mem_o.checksum();
    let (pos_o, neg_o) = oracle_link_scores(&model, &mc, &d, &csr, &mut mem_o, start, end);
    let mut mem_e = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    replay_memory(&model, &mc, &d, &csr, &mut mem_e, None, 0..start, BATCH);
    let eval_res = evaluate(
        &model,
        &mc,
        &d,
        &csr,
        &mut mem_e,
        None,
        start..end,
        BATCH,
        EVAL_NEGS,
        NEG_SEED,
    );

    // Serve: ingest the same prefix (same batch boundaries), then
    // score-and-ingest the range.
    let mut session = ServeSession::new(&model, &d, None);
    for r in batching::chronological_batches(0..start, BATCH) {
        session
            .ingest(&d.graph.events()[r])
            .expect("chronological warmup slab");
    }
    assert_eq!(
        session.memory_checksum(),
        prefix_checksum,
        "prefix ingest must reproduce the offline replay's memory"
    );

    let mut sampler = EvalNegatives::new(&d.graph, NEG_SEED);
    let mut pos_s = Vec::new();
    let mut neg_s = Vec::new();
    for batch_range in batching::chronological_batches(start..end, BATCH) {
        let events = &d.graph.events()[batch_range];
        let extra: Vec<QueryRequest> = events
            .iter()
            .flat_map(|e| {
                sampler
                    .draw_excluding(EVAL_NEGS, e.dst)
                    .into_iter()
                    .map(|n| QueryRequest::LinkScore {
                        src: e.src,
                        dst: n,
                        t: e.t,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let out = session
            .ingest_scored(events, &extra)
            .expect("valid scored slab");
        pos_s.extend(out.event_scores.iter().map(|r| r.scores()[0]));
        neg_s.extend(out.extra.iter().map(|r| r.scores()[0]));
    }

    assert_eq!(pos_s, pos_o, "positive scores must match bit for bit");
    assert_eq!(neg_s, neg_o, "negative scores must match bit for bit");
    assert_eq!(
        session.memory_checksum(),
        mem_o.checksum(),
        "final node memory must match the offline walk"
    );
    let mrr = loss::mrr(&pos_s, &neg_s, EVAL_NEGS);
    assert_eq!(mrr, eval_res.metric, "metric must match evaluate exactly");
    assert_eq!(eval_res.events, end - start);
}

#[test]
fn link_serve_matches_evaluate_one_layer() {
    let d_edge = 172; // wikipedia-analog edge width
    assert_link_serve_equivalence(tiny_model(d_edge), 5);
}

#[test]
fn link_serve_matches_evaluate_two_layer() {
    let mc = tiny_model(172).with_fanouts(vec![5, 3]);
    assert_link_serve_equivalence(mc, 6);
}

#[test]
fn link_serve_matches_evaluate_without_dedup() {
    let mc = tiny_model(172).without_dedup_readout();
    assert_link_serve_equivalence(mc, 7);
}

/// Edge classification: the slab's own `(src, dst, t)` scores are the
/// per-class logits; the F1-micro over the serve-side logits must
/// equal `evaluate`'s, and the memory trajectories must agree.
fn assert_class_serve_equivalence(n_layers: usize, model_seed: u64) {
    let d = generators::gdelt(2e-5, 17);
    assert_eq!(d.task, Task::EdgeClassification);
    let csr = TCsr::build(&d.graph);
    let mc = {
        let mut mc = tiny_model(d.edge_features.cols()).with_classes(56);
        if n_layers > 1 {
            mc = mc.with_fanouts(vec![5, 3]);
        }
        mc
    };
    let mut rng = seeded_rng(model_seed);
    let model = TgnModel::new(mc.clone(), &mut rng);
    let (start, end) = window(&d);

    // Oracle logits via the engine (the loop inside `evaluate`).
    let mut mem_o = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    replay_memory(&model, &mc, &d, &csr, &mut mem_o, None, 0..start, BATCH);
    let prep = BatchPreparer::new(&d, &csr, &mc);
    let mut engine = InferenceEngine::new();
    let mut logits_o: Vec<f32> = Vec::new();
    for batch_range in batching::chronological_batches(start..end, BATCH) {
        let prepared = prep.prepare(batch_range, &[], 1, &mut mem_o);
        let out = engine.infer_step(&model, &prepared.pos, None, None);
        logits_o.extend_from_slice(&out.pos_scores);
        mem_o.write(&out.write);
    }
    let mut mem_e = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    replay_memory(&model, &mc, &d, &csr, &mut mem_e, None, 0..start, BATCH);
    let eval_res = evaluate(
        &model,
        &mc,
        &d,
        &csr,
        &mut mem_e,
        None,
        start..end,
        BATCH,
        1,
        NEG_SEED,
    );

    // Serve.
    let mut session = ServeSession::new(&model, &d, None);
    for r in batching::chronological_batches(0..start, BATCH) {
        session
            .ingest(&d.graph.events()[r])
            .expect("chronological warmup slab");
    }
    let mut logits_s: Vec<f32> = Vec::new();
    for batch_range in batching::chronological_batches(start..end, BATCH) {
        let out = session
            .ingest_scored(&d.graph.events()[batch_range], &[])
            .expect("valid scored slab");
        for r in &out.event_scores {
            logits_s.extend_from_slice(r.scores());
        }
    }
    assert_eq!(logits_s, logits_o, "class logits must match bit for bit");
    assert_eq!(session.memory_checksum(), mem_o.checksum());

    // F1 over the serve-side logits equals evaluate's metric.
    let labels = d.labels.as_ref().expect("classification labels");
    let idx: Vec<usize> = d.graph.events()[start..end]
        .iter()
        .map(|e| e.eid as usize)
        .collect();
    let label_rows = labels.gather_rows(&idx);
    let logit_mat =
        disttgl::tensor::Matrix::from_vec(end - start, mc.num_classes, logits_s.clone());
    let f1 = loss::f1_micro(&logit_mat, &label_rows);
    assert_eq!(f1, eval_res.metric, "F1 must match evaluate exactly");
}

#[test]
fn class_serve_matches_evaluate_one_layer() {
    assert_class_serve_equivalence(1, 9);
}

#[test]
fn class_serve_matches_evaluate_two_layer() {
    assert_class_serve_equivalence(2, 10);
}

/// Ingest at *different* (finer) batch boundaries than the prefix
/// replay changes the memory trajectory's batching but not the
/// adjacency — `recent_before` answers over the dynamic index must
/// still match the frozen build (rebuild parity at the system level).
#[test]
fn dynamic_adjacency_matches_frozen_build_after_streaming() {
    use disttgl::graph::TemporalAdjacency;
    let d = generators::wikipedia(0.005, 31);
    let csr = TCsr::build(&d.graph);
    let mc = tiny_model(172);
    let mut rng = seeded_rng(12);
    let model = TgnModel::new(mc, &mut rng);
    let mut session = ServeSession::new(&model, &d, None);
    // Uneven slabs, including single events.
    let n = d.graph.num_events();
    let mut at = 0usize;
    for step in [1usize, 7, 64, 3, 200].iter().cycle() {
        if at >= n {
            break;
        }
        let end = (at + step).min(n);
        session
            .ingest(&d.graph.events()[at..end])
            .expect("chronological slab");
        at = end;
    }
    let adj = session.adjacency();
    for node in (0..d.graph.num_nodes() as u32).step_by(17) {
        assert_eq!(adj.neighbors(node), csr.neighbors(node), "node {node}");
        let t = d.graph.max_time() * 0.6;
        assert_eq!(
            adj.recent_before(node, t, 10),
            csr.recent_before(node, t, 10)
        );
    }
}
