//! Equivalence story for the deduplicated readout / folded GRU path
//! (`ModelConfig::dedup_readout`) against the per-occurrence oracle:
//!
//! * **Forward is bit-identical.** The memory update is a pure
//!   per-row function of the `(mem, mail)` pair, shared by all of a
//!   node's occurrences, so folding is exact — scores and memory
//!   writes must match bit for bit on both tasks.
//! * **Backward matches within tolerance.** Folding sums occurrence
//!   gradients per unique node *before* the GRU weight-gradient
//!   contractions instead of inside them — identical in exact
//!   arithmetic, equal up to float summation order in practice.
//! * **Training converges identically.** Sequential and distributed
//!   runs with dedup on/off must land on matching final metrics.
//!
//! The summation-order contract itself (ascending occurrence index per
//! unique node) is documented in `core::batch` and property-tested in
//! `crates/tensor`.

use disttgl::cluster::ClusterSpec;
use disttgl::core::{
    train_distributed, train_single, BatchPreparer, MemoryAccess, ModelConfig, ParallelConfig,
    TgnModel, TrainConfig,
};
use disttgl::data::{generators, Dataset, NegativeStore};
use disttgl::graph::TCsr;
use disttgl::mem::MemoryState;
use disttgl::tensor::seeded_rng;

fn tiny_model(d_edge: usize) -> ModelConfig {
    let mut mc = ModelConfig::compact(d_edge);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

/// Replays `n_batches` inference steps (scoring + write-back) twice —
/// folded and per-occurrence — and asserts scores, writes, and the
/// evolving memory state are bit-identical.
fn assert_forward_bit_identical(d: &Dataset, mc: ModelConfig, n_batches: usize, batch: usize) {
    assert!(mc.dedup_readout);
    let mc_occ = mc.clone().without_dedup_readout();
    let csr = TCsr::build(&d.graph);
    let mut rng = seeded_rng(31);
    let model = TgnModel::new(mc.clone(), &mut rng);
    let prep_fold = BatchPreparer::new(d, &csr, &mc);
    let prep_occ = BatchPreparer::new(d, &csr, &mc_occ);
    let mut mem_fold = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    let mut mem_occ = mem_fold.clone();
    let store = (mc.num_classes == 0)
        .then(|| NegativeStore::generate(&d.graph, n_batches * batch, 2, 1, 9));

    for i in 0..n_batches {
        let range = i * batch..(i + 1) * batch;
        let negs = store.as_ref().map(|s| s.slice(0, range.clone()));
        let neg_slices: Vec<&[u32]> = negs.into_iter().collect();
        let folded = prep_fold.prepare(range.clone(), &neg_slices, 1, &mut mem_fold);
        let oracle = prep_occ.prepare(range, &neg_slices, 1, &mut mem_occ);

        let out_f = model.infer_step(&folded.pos, folded.negs.first(), None);
        let out_o = model.infer_step(&oracle.pos, oracle.negs.first(), None);
        assert_eq!(out_f.pos_scores, out_o.pos_scores, "batch {i}: pos scores");
        assert_eq!(out_f.neg_scores, out_o.neg_scores, "batch {i}: neg scores");
        assert_eq!(
            out_f.write.nodes, out_o.write.nodes,
            "batch {i}: write nodes"
        );
        assert_eq!(out_f.write.mem, out_o.write.mem, "batch {i}: write mem");
        assert_eq!(out_f.write.mail, out_o.write.mail, "batch {i}: write mail");
        assert_eq!(out_f.write.mem_ts, out_o.write.mem_ts);
        assert_eq!(out_f.write.mail_ts, out_o.write.mail_ts);
        MemoryAccess::write(&mut mem_fold, out_f.write);
        MemoryAccess::write(&mut mem_occ, out_o.write);
    }
    // The streams stayed bit-identical through every write.
    let all: Vec<u32> = (0..d.graph.num_nodes() as u32).collect();
    let (rf, ro) = (mem_fold.read(&all), mem_occ.read(&all));
    assert_eq!(rf.mem, ro.mem, "final memory diverged");
    assert_eq!(rf.mail, ro.mail, "final mails diverged");
}

/// (a) Link prediction: folded forward ≡ per-occurrence forward, bit
/// for bit, including every delayed-update memory write.
#[test]
fn forward_bit_identical_link_prediction() {
    let d = generators::wikipedia(0.006, 311);
    let mc = tiny_model(d.edge_features.cols());
    assert_forward_bit_identical(&d, mc, 6, 48);
}

/// (a) Edge classification: same bit-identity through the
/// classification head (no negative parts).
#[test]
fn forward_bit_identical_edge_classification() {
    let d = generators::gdelt(2.5e-5, 312);
    let mc = tiny_model(d.edge_features.cols()).with_classes(d.num_classes());
    assert_forward_bit_identical(&d, mc, 4, 48);
}

/// (a, static memory) The folded static combine adds each unique
/// node's static row once and expands — still bit-identical.
#[test]
fn forward_bit_identical_with_static_memory() {
    let d = generators::wikipedia(0.005, 313);
    let mut mc = tiny_model(d.edge_features.cols());
    mc.static_memory = true;
    let mc_occ = mc.clone().without_dedup_readout();
    let csr = TCsr::build(&d.graph);
    let sm = disttgl::core::StaticMemory::random(d.graph.num_nodes(), mc.d_mem, 55);
    let mut rng = seeded_rng(32);
    let model = TgnModel::new(mc.clone(), &mut rng);
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    let folded = BatchPreparer::new(&d, &csr, &mc).prepare(0..64, &[], 1, &mut mem.clone());
    let oracle = BatchPreparer::new(&d, &csr, &mc_occ).prepare(0..64, &[], 1, &mut mem);
    let out_f = model.infer_step(&folded.pos, None, Some(&sm));
    let out_o = model.infer_step(&oracle.pos, None, Some(&sm));
    assert_eq!(out_f.write.mem, out_o.write.mem);
    assert_eq!(out_f.write.mail, out_o.write.mail);
}

/// (b) One training step from identical weights: parameter gradients
/// agree within float-summation-order tolerance, and the folded run
/// is itself deterministic (the ascending-occurrence contract).
#[test]
fn backward_matches_oracle_within_tolerance() {
    let d = generators::wikipedia(0.006, 314);
    let mc = tiny_model(d.edge_features.cols());
    let mc_occ = mc.clone().without_dedup_readout();
    let csr = TCsr::build(&d.graph);
    let store = NegativeStore::generate(&d.graph, 128, 1, 1, 7);

    let grads_for = |cfg: &ModelConfig| {
        let mut rng = seeded_rng(33);
        let mut model = TgnModel::new(cfg.clone(), &mut rng);
        let prep = BatchPreparer::new(&d, &csr, cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        // Two batches so the second sees non-trivial memory/mails.
        let b0 = prep.prepare(0..64, &[store.slice(0, 0..64)], 1, &mut mem);
        let out = model.train_step(&b0.pos, Some(&b0.negs[0]), None);
        MemoryAccess::write(&mut mem, out.write);
        let b1 = prep.prepare(64..128, &[store.slice(0, 64..128)], 1, &mut mem);
        model.params.zero_grads();
        let out = model.train_step(&b1.pos, Some(&b1.negs[0]), None);
        (model.params.flatten_grads(), out.loss)
    };

    let (gf, lf) = grads_for(&mc);
    let (gf2, lf2) = grads_for(&mc);
    assert_eq!(gf, gf2, "folded backward must be deterministic");
    assert_eq!(lf, lf2);

    let (go, lo) = grads_for(&mc_occ);
    assert_eq!(lf, lo, "forward loss is bit-identical");
    assert_eq!(gf.len(), go.len());
    let (mut num, mut den) = (0.0f64, 0.0f64);
    for (&a, &b) in gf.iter().zip(&go) {
        num += ((a - b) as f64).powi(2);
        den += (b as f64).powi(2);
    }
    let rel = (num / den.max(1e-30)).sqrt();
    assert!(
        rel < 1e-4,
        "gradient relative L2 deviation {rel} exceeds summation-order tolerance"
    );
}

/// (b) Optimizer-in-the-loop parity: short training runs with dedup
/// on/off track each other closely and both learn.
#[test]
fn sequential_convergence_matches_oracle() {
    let d = generators::wikipedia(0.006, 315);
    let mc = tiny_model(d.edge_features.cols());
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 100;
    cfg.epochs = 4;
    cfg.eval_negs = 9;
    cfg.seed = 19;
    cfg.base_lr = 1.2e-2;

    let folded = train_single(&d, &mc, &cfg);
    let oracle = train_single(&d, &mc.without_dedup_readout(), &cfg);

    assert_eq!(folded.loss_history.len(), oracle.loss_history.len());
    // Same forward at step 0 (identical weights) — losses diverge only
    // through float summation order downstream of the optimizer.
    assert_eq!(folded.loss_history[0], oracle.loss_history[0]);
    let max_dev = folded
        .loss_history
        .iter()
        .zip(&oracle.loss_history)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_dev < 0.05, "loss trajectories diverged: {max_dev}");
    assert!(
        (folded.test_metric - oracle.test_metric).abs() < 0.05,
        "final metrics diverged: folded {} vs oracle {}",
        folded.test_metric,
        oracle.test_metric
    );
}

/// (c) `train_distributed` parity with `dedup_readout` on/off across
/// parallelism axes (i·j — the epoch-parallel Continue passes reuse
/// the folded parts too).
#[test]
fn distributed_dedup_on_off_parity() {
    let d = generators::wikipedia(0.005, 316);
    let mc = tiny_model(d.edge_features.cols());
    let mut cfg = TrainConfig::new(ParallelConfig::new(2, 2, 1));
    cfg.local_batch = 50;
    cfg.epochs = 4;
    cfg.eval_negs = 9;
    cfg.seed = 23;
    cfg.base_lr = 1.2e-2;

    let folded = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 4));
    let oracle = train_distributed(
        &d,
        &mc.without_dedup_readout(),
        &cfg,
        ClusterSpec::new(1, 4),
    );

    assert!(!folded.loss_history.is_empty());
    assert_eq!(folded.loss_history.len(), oracle.loss_history.len());
    let max_dev = folded
        .loss_history
        .iter()
        .zip(&oracle.loss_history)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_dev < 0.05, "loss trajectories diverged: {max_dev}");
    assert!(
        (folded.test_metric - oracle.test_metric).abs() < 0.05,
        "final metrics diverged: folded {} vs oracle {}",
        folded.test_metric,
        oracle.test_metric
    );
    // Dedup must actually shrink the serialized daemon reads.
    assert!(
        folded.daemon_rows_read < oracle.daemon_rows_read,
        "folded reads {} not below per-occurrence reads {}",
        folded.daemon_rows_read,
        oracle.daemon_rows_read
    );
    assert_eq!(folded.daemon_rows_written, oracle.daemon_rows_written);
}
