//! Concurrent-serving equivalence: the multi-threaded MVCC plane
//! (`core::serve::ConcurrentServe`) is a **scheduling** of the
//! serialized session's arithmetic, never a new approximation.
//!
//! The contract (ISSUE 10): under seeded mixed ingest/query load with
//! a live writer and a reader pool, every query's responses must be
//! bit-identical to a serialized `ServeSession` replay of the same
//! admitted slab order at the answer's reported watermark, and the
//! final node-memory digest must match exactly. Pinned here for both
//! tasks (link prediction on the Wikipedia analog, edge classification
//! on the GDELT analog), at 1- and 2-layer stacks, plus the
//! atomicity/backpressure error paths under contention.

use disttgl::core::serve::{QueryRequest, ServeSession};
use disttgl::core::{
    ConcurrentOptions, ConcurrentServe, IngestError, ModelConfig, ServeError, TgnModel,
};
use disttgl::data::{generators, Dataset};
use disttgl::graph::{batching, Event};
use disttgl::tensor::seeded_rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const BATCH: usize = 50;

fn tiny_model(d_edge: usize) -> ModelConfig {
    let mut mc = ModelConfig::compact(d_edge);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

/// 2 reader threads when the host has the cores, 1 otherwise — the
/// same honest gate the CI smoke job applies.
fn reader_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(2)
}

fn warm_session<'a>(model: &'a TgnModel, d: &'a Dataset, upto: usize) -> ServeSession<'a> {
    let mut session = ServeSession::new(model, d, None);
    for r in batching::chronological_batches(0..upto, BATCH) {
        session
            .ingest(&d.graph.events()[r])
            .expect("chronological warmup slab");
    }
    session
}

/// Seeded mixed job pool: link scores and embeds over the warm prefix,
/// queried just past the stream's end so frontiers keep growing under
/// the concurrent writer.
fn query_jobs(events: &[Event], t: f32, n_jobs: usize) -> Vec<Vec<QueryRequest>> {
    (0..n_jobs)
        .map(|j| {
            vec![
                QueryRequest::LinkScore {
                    src: events[(j * 13) % events.len()].src,
                    dst: events[(j * 7 + 5) % events.len()].dst,
                    t,
                },
                QueryRequest::LinkScore {
                    src: events[(j * 3 + 11) % events.len()].src,
                    dst: events[(j * 17 + 2) % events.len()].dst,
                    t,
                },
                QueryRequest::Embed {
                    node: events[(j * 5 + 1) % events.len()].src,
                    t,
                },
            ]
        })
        .collect()
}

/// The stress drive: a writer thread drains the bounded queue, a
/// producer enqueues the load slabs (retrying on backpressure so
/// nothing is shed and the admitted order stays known), and a reader
/// pool answers the job list concurrently. Then the whole run is
/// replayed serially and compared bit for bit, watermark by watermark.
fn assert_concurrent_matches_serialized(d: &Dataset, mc: ModelConfig, model_seed: u64) {
    let mut rng = seeded_rng(model_seed);
    let model = TgnModel::new(mc, &mut rng);
    let events = d.graph.events();
    let n = events.len();
    assert!(n >= 400, "dataset too small for the stress window ({n})");
    let warm = n / 2;
    let load_end = (warm + 400).min(n);
    let slabs: Vec<Vec<Event>> = events[warm..load_end]
        .chunks(BATCH)
        .map(|c| c.to_vec())
        .collect();
    let t_query = d.graph.max_time() + 1.0;
    let jobs = query_jobs(&events[0..warm], t_query, 14);
    let readers = reader_count();

    let serve = ConcurrentServe::from_session(
        warm_session(&model, d, warm),
        ConcurrentOptions {
            ingest_queue_capacity: 2 * BATCH,
        },
    );
    let stop = AtomicBool::new(false);
    let answers = std::thread::scope(|s| {
        s.spawn(|| serve.run_writer(&stop));
        let producer = s.spawn(|| {
            for slab in &slabs {
                // Retry on backpressure: the admitted order must stay
                // exactly the enqueue order for the replay below.
                while serve.enqueue_ingest(slab.clone()).is_err() {
                    std::thread::sleep(Duration::from_micros(50));
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        let answers = serve.answer_all(&jobs, readers);
        // The producer must finish before the writer is told to stop —
        // a stopped writer no longer frees queue capacity.
        producer.join().expect("producer");
        stop.store(true, Ordering::Release);
        answers
    });
    assert_eq!(
        serve.watermark(),
        slabs.len() as u64,
        "clean shutdown applies every admitted slab"
    );
    let st = serve.stats();
    assert_eq!(st.queries_answered as usize, jobs.len());
    assert_eq!(
        st.clean_queries + st.repaired_queries + st.resampled_queries,
        st.queries_answered
    );

    // Serialized replay of the admitted order: each answer must equal
    // the serialized session's answer at its reported watermark.
    let mut oracle = warm_session(&model, d, warm);
    let mut oracle_events = warm;
    for w in 0..=slabs.len() as u64 {
        for (job, ans) in jobs.iter().zip(&answers) {
            let ans = ans.as_ref().expect("valid stress query");
            if ans.watermark == w {
                assert_eq!(
                    ans.events_seen, oracle_events,
                    "events_seen must match the serialized state at watermark {w}"
                );
                assert_eq!(
                    ans.responses,
                    oracle.query(job).expect("valid stress query"),
                    "answer at watermark {w} must equal serialized replay"
                );
            }
        }
        if (w as usize) < slabs.len() {
            let slab = &slabs[w as usize];
            oracle.ingest(slab).expect("admitted slab");
            oracle_events += slab.len();
        }
    }
    assert_eq!(
        serve.memory_checksum(),
        oracle.memory_checksum(),
        "final memory digest must equal the serialized replay"
    );
    assert_eq!(serve.events_ingested(), oracle.events_ingested());
}

#[test]
fn stress_link_one_layer_matches_serialized_replay() {
    let d = generators::wikipedia(0.005, 31);
    assert_concurrent_matches_serialized(&d, tiny_model(172), 5);
}

#[test]
fn stress_link_two_layer_matches_serialized_replay() {
    let d = generators::wikipedia(0.005, 31);
    assert_concurrent_matches_serialized(&d, tiny_model(172).with_fanouts(vec![5, 3]), 6);
}

#[test]
fn stress_class_one_layer_matches_serialized_replay() {
    let d = generators::gdelt(2e-5, 17);
    assert_concurrent_matches_serialized(
        &d,
        tiny_model(d.edge_features.cols()).with_classes(56),
        9,
    );
}

#[test]
fn stress_class_two_layer_matches_serialized_replay() {
    let d = generators::gdelt(2e-5, 17);
    let mc = tiny_model(d.edge_features.cols())
        .with_classes(56)
        .with_fanouts(vec![5, 3]);
    assert_concurrent_matches_serialized(&d, mc, 10);
}

/// Mid-slab atomicity: a prober hammering `(watermark, num_events,
/// memory_checksum)` under single read-lock holds while the writer
/// applies slabs must only ever observe exact slab-boundary states —
/// the triple at watermark w must equal the serialized replay's state
/// after w slabs, never a half-applied one (adjacency appended but
/// memory not yet written, or vice versa).
#[test]
fn probe_observes_only_slab_boundaries() {
    let d = generators::wikipedia(0.005, 31);
    let model = TgnModel::new(tiny_model(172), &mut seeded_rng(12));
    let events = d.graph.events();
    let warm = events.len() / 2;
    let load_end = (warm + 300).min(events.len());
    let slabs: Vec<Vec<Event>> = events[warm..load_end]
        .chunks(30)
        .map(|c| c.to_vec())
        .collect();

    // Serialized boundary states, indexed by watermark.
    let mut oracle = warm_session(&model, &d, warm);
    let mut boundaries = vec![(warm, oracle.memory_checksum())];
    for slab in &slabs {
        oracle.ingest(slab).expect("admitted slab");
        boundaries.push((oracle.events_ingested(), oracle.memory_checksum()));
    }

    let serve =
        ConcurrentServe::from_session(warm_session(&model, &d, warm), ConcurrentOptions::default());
    let stop = AtomicBool::new(false);
    let probes = std::thread::scope(|s| {
        let prober = s.spawn(|| {
            // Probe before checking the stop flag so at least one
            // sample lands even when this thread is starved until the
            // writer finishes (1-core hosts) — the final boundary is
            // still a boundary.
            let mut seen = Vec::new();
            loop {
                seen.push(serve.consistency_probe());
                if stop.load(Ordering::Acquire) {
                    break;
                }
            }
            seen
        });
        for slab in &slabs {
            serve.ingest(slab).expect("admitted slab");
        }
        stop.store(true, Ordering::Release);
        prober.join().expect("prober")
    });
    assert!(!probes.is_empty());
    for (w, ev, ck) in probes {
        let (exp_ev, exp_ck) = boundaries[w as usize];
        assert_eq!(ev, exp_ev, "mid-slab adjacency visible at watermark {w}");
        assert_eq!(ck, exp_ck, "mid-slab memory visible at watermark {w}");
    }
}

/// `IngestError::Rejected` stats from a concurrent caller: while a
/// producer streams valid chronological slabs, a second caller ingests
/// a mixed slab whose first event is stale (always rejected) and whose
/// second is beyond the whole stream (always accepted). Whatever the
/// interleaving, the error's partial-apply stats are exact, the global
/// accounting balances, and the final state equals a serialized replay
/// of the reconstructed admitted order.
#[test]
fn rejected_stats_are_exact_from_a_concurrent_caller() {
    let d = generators::wikipedia(0.005, 31);
    let model = TgnModel::new(tiny_model(172), &mut seeded_rng(13));
    let events = d.graph.events();
    let warm = events.len() / 2;
    let load_end = (warm + 300).min(events.len());
    let slabs: Vec<Vec<Event>> = events[warm..load_end]
        .chunks(30)
        .map(|c| c.to_vec())
        .collect();
    let mixed = {
        let stale = events[10]; // t far below the warm head: always rejected
        let mut future = events[load_end - 1];
        future.t = d.graph.max_time() + 5.0; // beyond everything: always accepted
        vec![stale, future]
    };

    let serve =
        ConcurrentServe::from_session(warm_session(&model, &d, warm), ConcurrentOptions::default());
    let (slab_results, mixed_err) = std::thread::scope(|s| {
        let intruder = s.spawn(|| {
            std::thread::sleep(Duration::from_millis(2));
            serve.ingest(&mixed).expect_err("stale event must reject")
        });
        let results: Vec<bool> = slabs
            .iter()
            .map(|slab| serve.ingest(slab).is_ok())
            .collect();
        (results, intruder.join().expect("intruder"))
    });

    // The intruder's partial-apply stats are exact regardless of when
    // it interleaved.
    let IngestError::Rejected { applied, rejected } = mixed_err;
    assert_eq!(applied.events, 1, "the future event always lands");
    assert_eq!(rejected.len(), 1);
    assert_eq!(rejected[0].0, 0, "the stale event is index 0");

    // Once the intruder's far-future event lands, every later producer
    // slab is wholly stale — the Ok pattern must be a clean prefix.
    let ok_prefix = slab_results.iter().take_while(|ok| **ok).count();
    assert!(
        slab_results[ok_prefix..].iter().all(|ok| !ok),
        "producer results must be Ok-prefix then all-rejected, got {slab_results:?}"
    );

    // Global accounting balances…
    let st = serve.stats();
    let ok_events: usize = slabs[..ok_prefix].iter().map(Vec::len).sum();
    let rejected_events: usize = slabs[ok_prefix..].iter().map(Vec::len).sum();
    assert_eq!(st.events_applied as usize, ok_events + 1);
    assert_eq!(st.events_rejected as usize, rejected_events + 1);

    // …and the reconstructed admitted order replays to the same state:
    // the producer's Ok prefix, then the intruder's accepted event.
    let mut oracle = warm_session(&model, &d, warm);
    for slab in &slabs[..ok_prefix] {
        oracle.ingest(slab).expect("admitted slab");
    }
    let _ = oracle.ingest(&mixed); // same partial apply: future event only
    assert_eq!(serve.memory_checksum(), oracle.memory_checksum());
    assert_eq!(serve.events_ingested(), oracle.events_ingested());
}

/// Backpressure loses nothing and duplicates nothing: a producer
/// hammering a two-slab queue sees typed `Overloaded` refusals, yet
/// with retries every slab is admitted exactly once and the final
/// state equals the serialized replay.
#[test]
fn backpressure_admits_exactly_once_under_retry() {
    let d = generators::wikipedia(0.005, 31);
    let model = TgnModel::new(tiny_model(172), &mut seeded_rng(14));
    let events = d.graph.events();
    let warm = events.len() / 2;
    let load_end = (warm + 300).min(events.len());
    let slabs: Vec<Vec<Event>> = events[warm..load_end]
        .chunks(25)
        .map(|c| c.to_vec())
        .collect();

    let serve = ConcurrentServe::from_session(
        warm_session(&model, &d, warm),
        ConcurrentOptions {
            ingest_queue_capacity: 50,
        },
    );
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| serve.run_writer(&stop));
        for slab in &slabs {
            loop {
                match serve.enqueue_ingest(slab.clone()) {
                    Ok(()) => break,
                    Err(ServeError::Overloaded {
                        queued_events,
                        capacity,
                    }) => {
                        assert!(queued_events + slab.len() > capacity);
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    Err(e) => panic!("unexpected enqueue error: {e}"),
                }
            }
        }
        stop.store(true, Ordering::Release);
    });
    assert_eq!(serve.watermark(), slabs.len() as u64);
    assert_eq!(serve.queued_events(), 0);

    let mut oracle = warm_session(&model, &d, warm);
    for slab in &slabs {
        oracle.ingest(slab).expect("admitted slab");
    }
    assert_eq!(serve.memory_checksum(), oracle.memory_checksum());
    assert_eq!(serve.events_ingested(), oracle.events_ingested());
}
