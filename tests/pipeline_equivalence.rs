//! The pipelined batch-prefetch executor must be *numerically
//! identical* to the sequential reference trainer: same losses, same
//! metrics, same final node-memory state. Phase 1 is a pure function
//! and phase 2 keeps the serialized read in its original slot, so any
//! divergence here is a bug, not noise — all comparisons are exact.

use disttgl::cluster::ClusterSpec;
use disttgl::core::{
    train_distributed, train_single_pipelined_traced, train_single_traced, ModelConfig,
    ParallelConfig, TrainConfig,
};
use disttgl::data::generators;
use disttgl::mem::MemoryState;

fn tiny_model(d_edge: usize) -> ModelConfig {
    let mut mc = ModelConfig::compact(d_edge);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

fn quick_cfg(epochs: usize) -> TrainConfig {
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 100;
    cfg.epochs = epochs;
    cfg.eval_negs = 9;
    cfg.seed = 11;
    cfg.base_lr = 1.2e-2;
    cfg
}

fn assert_memory_identical(a: &MemoryState, b: &MemoryState) {
    assert_eq!(a.num_nodes(), b.num_nodes());
    let all: Vec<u32> = (0..a.num_nodes() as u32).collect();
    let ra = a.read(&all);
    let rb = b.read(&all);
    assert_eq!(ra.mem, rb.mem, "node memory diverged");
    assert_eq!(ra.mem_ts, rb.mem_ts, "memory timestamps diverged");
    assert_eq!(ra.mail, rb.mail, "mails diverged");
    assert_eq!(ra.mail_ts, rb.mail_ts, "mail timestamps diverged");
}

/// Link prediction: losses, metrics, and final memory must match the
/// sequential oracle bit for bit.
#[test]
fn pipelined_matches_sequential_link_prediction() {
    let d = generators::wikipedia(0.006, 211);
    let mc = tiny_model(d.edge_features.cols());
    let cfg = quick_cfg(3);

    let (seq, seq_mem) = train_single_traced(&d, &mc, &cfg);
    let (pipe, pipe_mem) = train_single_pipelined_traced(&d, &mc, &cfg);

    assert!(!seq.loss_history.is_empty());
    assert_eq!(seq.loss_history, pipe.loss_history, "loss history diverged");
    assert_eq!(seq.test_metric, pipe.test_metric, "test metric diverged");
    assert_eq!(seq.convergence.len(), pipe.convergence.len());
    for (a, b) in seq.convergence.iter().zip(&pipe.convergence) {
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.metric, b.metric, "validation metric diverged");
    }
    assert_memory_identical(&seq_mem, &pipe_mem);
}

/// Edge classification (no negative store — the empty-negatives code
/// path through the pipeline).
#[test]
fn pipelined_matches_sequential_edge_classification() {
    let d = generators::gdelt(2.5e-5, 212);
    let mc = tiny_model(d.edge_features.cols()).with_classes(d.num_classes());
    let cfg = quick_cfg(2);

    let (seq, seq_mem) = train_single_traced(&d, &mc, &cfg);
    let (pipe, pipe_mem) = train_single_pipelined_traced(&d, &mc, &cfg);

    assert!(!seq.loss_history.is_empty());
    assert_eq!(seq.loss_history, pipe.loss_history, "loss history diverged");
    assert_eq!(seq.test_metric, pipe.test_metric, "test metric diverged");
    assert_memory_identical(&seq_mem, &pipe_mem);
}

/// The distributed trainer must produce identical results with the
/// prefetch pipeline on and off, across all three parallelism axes.
#[test]
fn distributed_prefetch_on_off_identical() {
    let d = generators::wikipedia(0.005, 213);
    let mc = tiny_model(d.edge_features.cols());
    let mut cfg = TrainConfig::new(ParallelConfig::new(2, 2, 1));
    cfg.local_batch = 50;
    cfg.epochs = 4;
    cfg.eval_negs = 9;
    cfg.seed = 17;
    cfg.base_lr = 1.2e-2;

    cfg.pipeline_prefetch = true;
    let on = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 4));
    cfg.pipeline_prefetch = false;
    let off = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 4));

    assert!(!on.loss_history.is_empty());
    assert_eq!(on.loss_history, off.loss_history, "loss history diverged");
    assert_eq!(on.test_metric, off.test_metric, "test metric diverged");
    assert_eq!(on.daemon_rows_read, off.daemon_rows_read);
    assert_eq!(on.daemon_rows_written, off.daemon_rows_written);
}

/// Zero-epoch runs (no batches at all) must not deadlock the
/// prefetcher or diverge.
#[test]
fn pipelined_handles_zero_epochs() {
    let d = generators::mooc(0.002, 214);
    let mc = tiny_model(0);
    let cfg = quick_cfg(0);
    let (seq, _) = train_single_traced(&d, &mc, &cfg);
    let (pipe, _) = train_single_pipelined_traced(&d, &mc, &cfg);
    assert_eq!(seq.loss_history, pipe.loss_history);
    assert_eq!(seq.test_metric, pipe.test_metric);
}
