//! Checkpoint/restore bit-identity: a run that checkpoints is
//! bit-identical to one that doesn't (saving is pure observation), and
//! a run resumed from a mid-training checkpoint finishes on exactly
//! the uninterrupted oracle's trajectory — losses, convergence
//! metrics, final test metric, and node-memory digests — for the
//! sequential trainer and the 1×1×2 distributed trainer, on both
//! tasks (link prediction and edge classification).

use disttgl::cluster::ClusterSpec;
use disttgl::core::{
    train_distributed, train_single_traced, ModelConfig, ParallelConfig, RunResult, TrainConfig,
};
use disttgl::data::generators;
use std::path::PathBuf;

fn tiny_model(d_edge: usize) -> ModelConfig {
    let mut mc = ModelConfig::compact(d_edge);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

fn seq_cfg(seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 64;
    cfg.epochs = 4;
    cfg.eval_negs = 9;
    cfg.eval_every_epoch = true;
    cfg.seed = seed;
    cfg
}

fn dist_cfg(seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::new(ParallelConfig::new(1, 1, 2));
    cfg.local_batch = 64;
    cfg.epochs = 4; // 2 sweeps at k = 2
    cfg.eval_negs = 9;
    cfg.eval_every_epoch = true;
    cfg.seed = seed;
    cfg.base_lr = 2e-2;
    cfg
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Everything in a [`RunResult`] that defines the training trajectory
/// (wall-clock fields excluded) must match bit for bit.
fn assert_trajectory_identical(a: &RunResult, b: &RunResult) {
    assert!(!a.loss_history.is_empty());
    assert_eq!(a.loss_history, b.loss_history, "loss history diverged");
    assert_eq!(a.test_metric, b.test_metric, "test metric diverged");
    assert_eq!(a.best_val_metric, b.best_val_metric);
    assert_eq!(a.iters_to_best, b.iters_to_best);
    assert_eq!(
        a.memory_checksums, b.memory_checksums,
        "memory digests diverged"
    );
    assert_eq!(a.convergence.len(), b.convergence.len());
    for (x, y) in a.convergence.iter().zip(&b.convergence) {
        assert_eq!(x.iteration, y.iteration);
        assert_eq!(x.metric, y.metric, "validation metric diverged");
    }
    assert!(!a.aborted && !b.aborted);
}

fn sequential_matrix(d: &disttgl::data::Dataset, mc: &ModelConfig, seed: u64, dir_name: &str) {
    let cfg = seq_cfg(seed);
    let (oracle, oracle_mem) = train_single_traced(d, mc, &cfg);

    let dir = fresh_dir(dir_name);
    let dir_s = dir.to_str().unwrap().to_string();
    let cfg_ckpt = cfg.clone().checkpoint_every(2, &dir_s);
    let (with_ckpt, ckpt_mem) = train_single_traced(d, mc, &cfg_ckpt);
    assert_trajectory_identical(&oracle, &with_ckpt);
    assert_eq!(
        oracle_mem.checksum(),
        ckpt_mem.checksum(),
        "checkpointing must be pure observation"
    );

    let ckpt = dir.join("ckpt_0002.bin");
    assert!(ckpt.exists(), "epoch-2 checkpoint must exist");
    let cfg_resume = cfg.clone().resume_from(ckpt.to_str().unwrap());
    let (resumed, resumed_mem) = train_single_traced(d, mc, &cfg_resume);
    std::fs::remove_dir_all(&dir).ok();
    assert_trajectory_identical(&oracle, &resumed);
    assert_eq!(
        oracle_mem.checksum(),
        resumed_mem.checksum(),
        "resumed run's final memory diverged"
    );
}

fn distributed_matrix(d: &disttgl::data::Dataset, mc: &ModelConfig, seed: u64, dir_name: &str) {
    let cfg = dist_cfg(seed);
    let spec = ClusterSpec::new(1, 2);
    let oracle = train_distributed(d, mc, &cfg, spec);

    let dir = fresh_dir(dir_name);
    let dir_s = dir.to_str().unwrap().to_string();
    let cfg_ckpt = cfg.clone().checkpoint_every(1, &dir_s);
    let with_ckpt = train_distributed(d, mc, &cfg_ckpt, spec);
    assert_trajectory_identical(&oracle, &with_ckpt);

    let ckpt = dir.join("ckpt_0001.bin");
    assert!(ckpt.exists(), "sweep-1 checkpoint must exist");
    let cfg_resume = cfg.clone().resume_from(ckpt.to_str().unwrap());
    let resumed = train_distributed(d, mc, &cfg_resume, spec);
    std::fs::remove_dir_all(&dir).ok();
    assert_trajectory_identical(&oracle, &resumed);
}

#[test]
fn sequential_link_prediction_resume_is_bit_identical() {
    let d = generators::mooc(0.0015, 301);
    let mc = tiny_model(0);
    sequential_matrix(&d, &mc, 5, "disttgl_ckpt_eq_seq_link");
}

#[test]
fn sequential_edge_classification_resume_is_bit_identical() {
    let d = generators::gdelt(2.5e-5, 302);
    let mc = tiny_model(d.edge_features.cols()).with_classes(d.num_classes());
    sequential_matrix(&d, &mc, 6, "disttgl_ckpt_eq_seq_cls");
}

#[test]
fn distributed_1x1x2_link_prediction_resume_is_bit_identical() {
    let d = generators::mooc(0.0015, 303);
    let mc = tiny_model(0);
    distributed_matrix(&d, &mc, 7, "disttgl_ckpt_eq_dist_link");
}

#[test]
fn distributed_1x1x2_edge_classification_resume_is_bit_identical() {
    let d = generators::gdelt(2.5e-5, 304);
    let mc = tiny_model(d.edge_features.cols()).with_classes(d.num_classes());
    distributed_matrix(&d, &mc, 8, "disttgl_ckpt_eq_dist_cls");
}
