//! Cross-crate integration tests: dataset generation → graph indexing
//! → batch preparation → model training → evaluation, through both the
//! synchronous store and the memory-daemon path.

use disttgl::cluster::ClusterSpec;
use disttgl::core::{
    evaluate, train_distributed, train_single, BatchPreparer, MemoryAccess, ModelConfig,
    ParallelConfig, TgnModel, TrainConfig,
};
use disttgl::data::{generators, NegativeStore};
use disttgl::graph::TCsr;
use disttgl::mem::{MemoryDaemon, MemoryState};
use disttgl::tensor::seeded_rng;

fn tiny_model(d_edge: usize) -> ModelConfig {
    let mut mc = ModelConfig::compact(d_edge);
    mc.d_mem = 16;
    mc.d_time = 8;
    mc.d_emb = 16;
    mc.n_neighbors = 5;
    mc.static_memory = false;
    mc
}

/// The daemon-backed memory path must produce bit-identical training
/// to the direct synchronous path for the 1×1×1 schedule.
#[test]
fn daemon_path_matches_direct_path() {
    let d = generators::wikipedia(0.004, 101);
    let csr = TCsr::build(&d.graph);
    let mc = tiny_model(d.edge_features.cols());
    let store = NegativeStore::generate(&d.graph, 256, 1, 1, 5);
    let steps = 4usize;
    let bs = 64usize;

    // Direct path.
    let mut rng = seeded_rng(9);
    let mut model_a = TgnModel::new(mc.clone(), &mut rng);
    let mut adam_a = model_a.optimizer(1e-3);
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    let prep = BatchPreparer::new(&d, &csr, &mc);
    let mut losses_a = Vec::new();
    for s in 0..steps {
        let range = s * bs..(s + 1) * bs;
        let negs = store.slice(0, range.clone());
        let batch = prep.prepare(range, &[negs], 1, &mut mem);
        model_a.params.zero_grads();
        let out = model_a.train_step(&batch.pos, Some(&batch.negs[0]), None);
        adam_a.step(&mut model_a.params);
        MemoryAccess::write(&mut mem, out.write);
        losses_a.push(out.loss);
    }

    // Daemon path (i = j = 1).
    let mut rng = seeded_rng(9);
    let mut model_b = TgnModel::new(mc.clone(), &mut rng);
    let mut adam_b = model_b.optimizer(1e-3);
    let daemon = MemoryDaemon::spawn(
        MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim()),
        1,
        1,
        steps,
        1,
    );
    let mut client = daemon.client(0);
    let mut losses_b = Vec::new();
    for s in 0..steps {
        let range = s * bs..(s + 1) * bs;
        let negs = store.slice(0, range.clone());
        let batch = prep.prepare(range, &[negs], 1, &mut client);
        model_b.params.zero_grads();
        let out = model_b.train_step(&batch.pos, Some(&batch.negs[0]), None);
        adam_b.step(&mut model_b.params);
        MemoryAccess::write(&mut client, out.write);
        losses_b.push(out.loss);
    }
    let (final_state, stats) = daemon.join();
    assert_eq!(losses_a, losses_b);
    assert_eq!(stats.reads_served as usize, steps);
    // Final memory states identical.
    let all: Vec<u32> = (0..d.graph.num_nodes() as u32).collect();
    assert_eq!(final_state.read(&all).mem, mem.read(&all).mem);
}

/// train_distributed(1×1×1) must match train_single exactly: same
/// losses, same test metric (they share semantics end to end).
#[test]
fn distributed_1x1x1_equals_single() {
    let d = generators::mooc(0.002, 102);
    let mc = tiny_model(0);
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 64;
    cfg.epochs = 2;
    cfg.eval_negs = 9;
    cfg.seed = 11;
    cfg.base_lr = 6e-3;

    let single = train_single(&d, &mc, &cfg);
    let dist = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 1));
    assert_eq!(single.loss_history, dist.loss_history);
    assert_eq!(single.test_metric, dist.test_metric);
    let conv_s: Vec<f64> = single.convergence.iter().map(|p| p.metric).collect();
    let conv_d: Vec<f64> = dist.convergence.iter().map(|p| p.metric).collect();
    assert_eq!(conv_s, conv_d);
}

/// All three strategies and the combined configuration finish and
/// produce sane metrics on every dataset family.
#[test]
fn all_strategies_on_all_dataset_families() {
    let configs = [
        ParallelConfig::new(2, 1, 1),
        ParallelConfig::new(1, 2, 1),
        ParallelConfig::new(1, 1, 2),
    ];
    let datasets = [
        generators::wikipedia(0.003, 103),
        generators::mooc(0.001, 104),
        generators::flights(0.0005, 105),
    ];
    for d in &datasets {
        for parallel in configs {
            let mc = tiny_model(d.edge_features.cols());
            let mut cfg = TrainConfig::new(parallel);
            cfg.local_batch = 48;
            cfg.epochs = parallel.world() * 2;
            cfg.eval_negs = 9;
            cfg.eval_every_epoch = false;
            cfg.seed = 13;
            cfg.base_lr = 1e-2;
            let res = train_distributed(d, &mc, &cfg, ClusterSpec::new(1, parallel.world()));
            assert!(
                res.test_metric.is_finite() && res.test_metric > 0.0,
                "{} {:?}: bad metric {}",
                d.name,
                parallel,
                res.test_metric
            );
            assert!(res.loss_history.iter().all(|l| l.is_finite()));
        }
    }
}

/// Evaluation sanity across the facade: training on wikipedia-like
/// data transfers to strictly-later events.
#[test]
fn trained_model_generalizes_to_future_events() {
    let d = generators::wikipedia(0.01, 106);
    let csr = TCsr::build(&d.graph);
    let mc = tiny_model(d.edge_features.cols());
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 100;
    cfg.epochs = 6;
    cfg.eval_negs = 19;
    cfg.base_lr = 1.2e-2;
    cfg.seed = 21;
    let res = train_single(&d, &mc, &cfg);

    // An untrained model on the same split.
    let mut rng = seeded_rng(999);
    let fresh = TgnModel::new(mc.clone(), &mut rng);
    let (train_end, val_end) = d.graph.chronological_split(0.70, 0.15);
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    disttgl::core::replay_memory(&fresh, &mc, &d, &csr, &mut mem, None, 0..val_end, 100);
    let untrained = evaluate(
        &fresh,
        &mc,
        &d,
        &csr,
        &mut mem,
        None,
        val_end..d.graph.num_events(),
        100,
        19,
        3,
    );
    assert!(
        res.test_metric > untrained.metric + 0.1,
        "trained {} vs untrained {}",
        res.test_metric,
        untrained.metric
    );
    let _ = train_end;
}

/// The planner's configuration trains successfully end to end.
#[test]
fn planner_to_training_pipeline() {
    let d = generators::wikipedia(0.004, 107);
    let spec = ClusterSpec::new(1, 4);
    let (parallel, max_batch) = disttgl::core::plan_from_graph(&d.graph, spec, 0.5, 64, 4);
    assert_eq!(parallel.world(), 4);
    assert!(max_batch >= 64);
    let mc = tiny_model(d.edge_features.cols());
    let mut cfg = TrainConfig::new(parallel);
    cfg.local_batch = 48;
    cfg.epochs = 4;
    cfg.eval_negs = 9;
    cfg.eval_every_epoch = false;
    cfg.base_lr = 1e-2;
    let res = train_distributed(&d, &mc, &cfg, spec);
    assert!(res.test_metric > 0.0);
}
