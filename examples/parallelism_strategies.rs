//! Side-by-side comparison of the three DistTGL parallel training
//! strategies on the same dataset and GPU budget — a miniature of the
//! paper's Figure 9 narrative:
//!
//! * mini-batch parallelism (`2×1×1`) relaxes intra-batch dependencies
//!   (larger effective batch → fewer captured events);
//! * epoch parallelism (`1×2×1`) keeps the batch size but raises
//!   gradient variance (same positives trained twice in a row);
//! * memory parallelism (`1×1×2`) keeps both, at 2× the host memory.
//!
//! ```sh
//! cargo run --release --example parallelism_strategies
//! ```

use disttgl::cluster::ClusterSpec;
use disttgl::core::{
    train_distributed, train_single, ModelConfig, ParallelConfig, RunResult, TrainConfig,
};
use disttgl::data::generators;

fn run(name: &str, parallel: ParallelConfig, dataset: &disttgl::data::Dataset) -> RunResult {
    let model_cfg = ModelConfig::compact(dataset.edge_features.cols());
    let mut cfg = TrainConfig::new(parallel);
    cfg.local_batch = 150;
    cfg.epochs = 12;
    cfg.base_lr = 8e-3;
    cfg.eval_negs = 49;
    let spec = ClusterSpec::new(1, parallel.world());
    let result = if parallel.world() == 1 {
        train_single(dataset, &model_cfg, &cfg)
    } else {
        train_distributed(dataset, &model_cfg, &cfg, spec)
    };
    println!(
        "{name:<22} iters {:>5}  test MRR {:.4}  {:>8.0} ev/s  grad-var {:.3e}",
        result.loss_history.len(),
        result.test_metric,
        result.throughput_events_per_sec,
        result.grad_variance,
    );
    result
}

fn main() {
    let dataset = generators::wikipedia(0.02, 13);
    println!("dataset: {:?}\n", dataset.stats());
    println!(
        "{:<22} {:>11} {:>14} {:>13} {:>14}",
        "strategy", "iterations", "test MRR", "events/s", "grad variance"
    );

    run("single GPU (1x1x1)", ParallelConfig::single(), &dataset);
    run("mini-batch (2x1x1)", ParallelConfig::new(2, 1, 1), &dataset);
    run("epoch      (1x2x1)", ParallelConfig::new(1, 2, 1), &dataset);
    run("memory     (1x1x2)", ParallelConfig::new(1, 1, 2), &dataset);

    println!(
        "\nPaper shape to look for: memory parallelism holds accuracy at\n\
         half the iterations; mini-batch parallelism trades accuracy for\n\
         throughput; epoch parallelism raises gradient variance."
    );
}
