//! Quick diagnostic: preparation share of a training step across
//! dataset/model combinations — the overlap ceiling of the pipelined
//! executor is `1 / (1 - prep_share)`.
//!
//! ```sh
//! cargo run --release --example prep_share
//! ```

use disttgl::core::{train_single, ModelConfig, ParallelConfig, TrainConfig};
use disttgl::data::generators;

fn main() {
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 600;
    cfg.epochs = 2;
    cfg.eval_every_epoch = false;
    cfg.seed = 7;

    for (name, scale) in [("wikipedia", 0.05), ("mooc", 0.02)] {
        let d = generators::by_name(name, scale, 0xD157);
        for (label, d_mem, d_time, d_emb, k) in [
            ("compact", 32, 16, 32, 10),
            ("small", 16, 8, 16, 10),
            ("tiny", 8, 4, 8, 10),
        ] {
            let mut mc = ModelConfig::compact(d.edge_features.cols());
            mc.d_mem = d_mem;
            mc.d_time = d_time;
            mc.d_emb = d_emb;
            mc.n_neighbors = k;
            mc.static_memory = false;
            let r = train_single(&d, &mc, &cfg);
            let prep = r.timing.prep_secs;
            let compute = r.timing.compute_secs;
            let share = prep / (prep + compute);
            println!(
                "{name:<10} {label:<8} prep {prep:6.2}s compute {compute:6.2}s  share {:5.1}%  ceiling {:.2}x  ({:.0} ev/s)",
                share * 100.0,
                1.0 / (1.0 - share),
                r.throughput_events_per_sec,
            );
        }
    }
}
