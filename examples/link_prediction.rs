//! Temporal link prediction with the full DistTGL pipeline, including
//! the §3.2.4 planner that picks the `i × j × k` configuration from
//! the dataset's captured-events profile and the hardware description.
//!
//! ```sh
//! cargo run --release --example link_prediction
//! ```

use disttgl::cluster::ClusterSpec;
use disttgl::core::{plan_from_graph, train_distributed, ModelConfig, TrainConfig};
use disttgl::data::generators;
use disttgl::graph::capture;

fn main() {
    let dataset = generators::reddit(0.01, 7);
    println!("== dataset: {} ==", dataset.name);
    println!("{:?}", dataset.stats());

    // Captured-events profile (the Figure 8 analysis) that drives the
    // planner's batch-size threshold.
    for bs in [100usize, 200, 400, 800] {
        let missing = capture::missing_information(&dataset.graph, bs);
        println!("batch {:>4}: missing information {:.3}", bs, missing);
    }

    // Plan for one 8-GPU machine with memory for 8 replicas, with at
    // most 10% information loss and a GPU that saturates at 200 events.
    let spec = ClusterSpec::new(1, 8);
    let (parallel, max_batch) = plan_from_graph(&dataset.graph, spec, 0.10, 200, 8);
    println!(
        "planner: max global batch {} -> configuration {}x{}x{} (i,j,k)",
        max_batch, parallel.i, parallel.j, parallel.k
    );

    let model_cfg = ModelConfig::compact(dataset.edge_features.cols());
    let mut cfg = TrainConfig::new(parallel);
    cfg.local_batch = (max_batch / parallel.i).clamp(64, 600);
    cfg.epochs = 16;
    cfg.base_lr = 6e-3;
    cfg.eval_negs = 49;

    let result = train_distributed(&dataset, &model_cfg, &cfg, spec);
    println!("\nconvergence (validation MRR per sweep):");
    for p in &result.convergence {
        println!(
            "  iter {:>6}  wall {:>7.2}s  MRR {:.4}",
            p.iteration, p.wall_secs, p.metric
        );
    }
    println!("\ntest MRR {:.4}", result.test_metric);
    println!(
        "throughput {:.0} events/s",
        result.throughput_events_per_sec
    );
    println!(
        "timing/trainer: prep {:.2}s, memory wait {:.2}s, compute {:.2}s, all-reduce {:.2}s",
        result.timing.prep_secs,
        result.timing.mem_wait_secs,
        result.timing.compute_secs,
        result.timing.allreduce_secs
    );
}
