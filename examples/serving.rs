//! Serving demo: train a model offline, then stand up a streaming
//! `ServeSession` that ingests live events and answers link-score /
//! embedding queries over the evolving graph — on both tasks — and
//! show the headline contract live: serving reproduces offline
//! evaluation bit for bit.
//!
//! ```sh
//! cargo run --release --example serving [-- --readers N]
//! ```
//!
//! `--readers N` sizes the reader pool of the concurrent snapshot-read
//! demo (default: 2 when the host has the cores, else 1).

use disttgl::core::serve::{QueryRequest, ServeSession};
use disttgl::core::{
    evaluate, replay_memory, BatchPreparer, ConcurrentOptions, ConcurrentServe, MemoryAccess,
    ModelConfig, TgnModel,
};
use disttgl::data::{generators, Dataset, EvalNegatives, NegativeStore};
use disttgl::graph::{batching, TCsr};
use disttgl::mem::MemoryState;
use disttgl::nn::loss;
use disttgl::tensor::seeded_rng;

const BATCH: usize = 200;
const EVAL_NEGS: usize = 19;

/// A few passes of plain single-trainer optimization — enough for the
/// demo's scores to mean something (the serving plane itself is
/// training-free: it only needs the weights).
fn train_briefly(d: &Dataset, mc: &ModelConfig, passes: usize, link: bool) -> TgnModel {
    let csr = TCsr::build(&d.graph);
    let mut model = TgnModel::new(mc.clone(), &mut seeded_rng(7));
    let mut adam = model.optimizer(3e-3);
    let prep = BatchPreparer::new(d, &csr, mc);
    let (train_end, _) = d.graph.chronological_split(0.70, 0.15);
    let store = link.then(|| NegativeStore::generate(&d.graph, train_end, 2, 1, 11));
    for pass in 0..passes {
        let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
        for range in batching::chronological_batches(0..train_end, BATCH) {
            let negs: Vec<&[u32]> = store
                .iter()
                .map(|s| s.slice(pass % 2, range.clone()))
                .collect();
            let batch = prep.prepare(range, &negs, 1, &mut mem);
            model.params.zero_grads();
            let out = model.train_step(&batch.pos, batch.negs.first(), None);
            model.params.clip_grad_norm(5.0);
            adam.step(&mut model.params);
            MemoryAccess::write(&mut mem, out.write);
        }
    }
    model
}

/// Parses `--readers N` (or `--readers=N`); defaults to 2 when the
/// host has the cores, 1 otherwise.
fn reader_flag() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--readers" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(v) = a.strip_prefix("--readers=") {
            if let Ok(n) = v.parse() {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(2)
}

fn main() {
    // ── Task 1: temporal link prediction on the Wikipedia analog ────
    let d = generators::wikipedia(0.01, 42);
    let mc = ModelConfig::compact(d.edge_features.cols());
    let (train_end, val_end) = d.graph.chronological_split(0.70, 0.15);
    let n = d.graph.num_events();
    println!(
        "link prediction: {} events ({} train); training briefly…",
        n, train_end
    );
    let model = train_briefly(&d, &mc, 3, true);

    // Stand up the serving plane and stream the entire history in.
    let mut session = ServeSession::new(&model, &d, None);
    for r in batching::chronological_batches(0..val_end, BATCH) {
        session
            .ingest(&d.graph.events()[r])
            .expect("chronological warmup slab");
    }
    println!(
        "session warm: {} events ingested, stream head t = {:.0}",
        session.events_ingested(),
        session.adjacency().stream_head()
    );

    // Live traffic: walk the test split with score-then-ingest (the
    // production order — every event is scored against pre-event
    // memory, then absorbed), ranking each true destination against
    // sampled negatives.
    let mut sampler = EvalNegatives::new(&d.graph, 5);
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for r in batching::chronological_batches(val_end..n, BATCH) {
        let events = &d.graph.events()[r];
        let extra: Vec<QueryRequest> = events
            .iter()
            .flat_map(|e| {
                sampler
                    .draw_excluding(EVAL_NEGS, e.dst)
                    .into_iter()
                    .map(|c| QueryRequest::LinkScore {
                        src: e.src,
                        dst: c,
                        t: e.t,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let out = session
            .ingest_scored(events, &extra)
            .expect("valid scored slab");
        pos.extend(out.event_scores.iter().map(|s| s.scores()[0]));
        neg.extend(out.extra.iter().map(|s| s.scores()[0]));
    }
    let serve_mrr = loss::mrr(&pos, &neg, EVAL_NEGS);

    // The same walk offline: replay memory to the split, evaluate.
    let csr = TCsr::build(&d.graph);
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    replay_memory(&model, &mc, &d, &csr, &mut mem, None, 0..val_end, BATCH);
    let offline = evaluate(
        &model,
        &mc,
        &d,
        &csr,
        &mut mem,
        None,
        val_end..n,
        BATCH,
        EVAL_NEGS,
        5,
    );
    println!(
        "test MRR: serving {serve_mrr:.4} | offline evaluate {:.4} | bit-identical: {} (memory digests equal: {})",
        offline.metric,
        serve_mrr == offline.metric,
        session.memory_checksum() == mem.checksum()
    );

    // Ad-hoc queries over the fully evolved graph: hypothetical future
    // links and a node embedding.
    let t_future = d.graph.max_time() + 10.0;
    let e0 = &d.graph.events()[0];
    let resp = session
        .query(&[
            QueryRequest::LinkScore {
                src: e0.src,
                dst: e0.dst,
                t: t_future,
            },
            QueryRequest::Embed {
                node: e0.src,
                t: t_future,
            },
        ])
        .expect("valid ad-hoc queries");
    println!(
        "ad-hoc: P(link {}→{} at t+10) logit = {:.3}; embed({}) = [{:.3}, {:.3}, …] ({} dims)\n",
        e0.src,
        e0.dst,
        resp[0].scores()[0],
        e0.src,
        resp[1].embedding()[0],
        resp[1].embedding()[1],
        resp[1].embedding().len()
    );

    // ── Concurrent snapshot-read serving (MVCC reader pool) ─────────
    // The same test-split traffic, but through `ConcurrentServe`: a
    // writer thread drains the bounded ingest queue while a reader
    // pool answers ad-hoc queries against versioned snapshots. Every
    // answer is bit-identical to some serialized interleaving.
    let readers = reader_flag().max(1);
    {
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut warm = ServeSession::new(&model, &d, None);
        for r in batching::chronological_batches(0..val_end, BATCH) {
            warm.ingest(&d.graph.events()[r])
                .expect("chronological warmup slab");
        }
        let serve = ConcurrentServe::from_session(warm, ConcurrentOptions::default());
        let slabs: Vec<Vec<disttgl::graph::Event>> = d.graph.events()[val_end..n]
            .chunks(BATCH)
            .map(|c| c.to_vec())
            .collect();
        let jobs: Vec<Vec<QueryRequest>> = (0..24)
            .map(|j| {
                let e = &d.graph.events()[(j * 37) % val_end];
                vec![
                    QueryRequest::LinkScore {
                        src: e.src,
                        dst: e.dst,
                        t: t_future,
                    },
                    QueryRequest::Embed {
                        node: e.src,
                        t: t_future,
                    },
                ]
            })
            .collect();
        let stop = AtomicBool::new(false);
        let answers = std::thread::scope(|s| {
            s.spawn(|| serve.run_writer(&stop));
            let producer = s.spawn(|| {
                for slab in &slabs {
                    while serve.enqueue_ingest(slab.clone()).is_err() {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
            });
            let answers = serve.answer_all(&jobs, readers);
            producer.join().expect("producer");
            stop.store(true, Ordering::Release);
            answers
        });
        let st = serve.stats();
        let answered = answers.iter().filter(|a| a.is_ok()).count();
        println!(
            "concurrent serving ({readers} reader(s)): {answered} queries answered live while \
             ingesting {} events (drift: {} clean, {} repaired, {} resampled)",
            st.events_applied, st.clean_queries, st.repaired_queries, st.resampled_queries
        );
        let mut oracle = ServeSession::new(&model, &d, None);
        for r in batching::chronological_batches(0..val_end, BATCH) {
            oracle
                .ingest(&d.graph.events()[r])
                .expect("chronological warmup slab");
        }
        for slab in &slabs {
            oracle.ingest(slab).expect("admitted slab");
        }
        println!(
            "memory digest equals serialized replay: {}\n",
            serve.memory_checksum() == oracle.memory_checksum()
        );
    }

    // ── Task 2: dynamic edge classification on the GDELT analog ─────
    let g = generators::gdelt(5e-5, 9);
    let gmc = ModelConfig::compact(g.edge_features.cols()).with_classes(56);
    let (gtrain, gval) = g.graph.chronological_split(0.70, 0.15);
    let gn = g.graph.num_events();
    println!(
        "edge classification: {} events ({} train); training briefly…",
        gn, gtrain
    );
    let gmodel = train_briefly(&g, &gmc, 2, false);

    let mut gsession = ServeSession::new(&gmodel, &g, None);
    for r in batching::chronological_batches(0..gval, BATCH) {
        gsession
            .ingest(&g.graph.events()[r])
            .expect("chronological warmup slab");
    }
    let mut logits: Vec<f32> = Vec::new();
    for r in batching::chronological_batches(gval..gn, BATCH) {
        let out = gsession
            .ingest_scored(&g.graph.events()[r], &[])
            .expect("valid scored slab");
        for s in &out.event_scores {
            logits.extend_from_slice(s.scores());
        }
    }
    let labels = g.labels.as_ref().expect("gdelt labels");
    let idx: Vec<usize> = g.graph.events()[gval..gn]
        .iter()
        .map(|e| e.eid as usize)
        .collect();
    let f1 = loss::f1_micro(
        &disttgl::tensor::Matrix::from_vec(gn - gval, 56, logits),
        &labels.gather_rows(&idx),
    );

    let gcsr = TCsr::build(&g.graph);
    let mut gmem = MemoryState::new(g.graph.num_nodes(), gmc.d_mem, gmc.mail_dim());
    replay_memory(&gmodel, &gmc, &g, &gcsr, &mut gmem, None, 0..gval, BATCH);
    let goffline = evaluate(
        &gmodel,
        &gmc,
        &g,
        &gcsr,
        &mut gmem,
        None,
        gval..gn,
        BATCH,
        1,
        5,
    );
    println!(
        "test F1-micro: serving {f1:.4} | offline evaluate {:.4} | bit-identical: {}",
        goffline.metric,
        f1 == goffline.metric
    );
}
