//! Quickstart: train a memory-based TGNN on a synthetic Wikipedia-like
//! temporal graph with a single simulated GPU, then with DistTGL's
//! memory parallelism on 4 simulated GPUs, then a quick
//! edge-classification run — all at a configurable embedding-stack
//! depth.
//!
//! ```sh
//! cargo run --release --example quickstart            # 1-layer (DistTGL)
//! cargo run --release --example quickstart -- --layers 2
//! cargo run --release --example quickstart -- --fanouts 10,5
//! ```

use disttgl::cluster::ClusterSpec;
use disttgl::core::{train_distributed, train_single, ModelConfig, ParallelConfig, TrainConfig};
use disttgl::data::generators;

/// Parses `--layers N` (default 1, the paper's model).
fn layers_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--layers")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--layers takes a positive integer"))
        .unwrap_or(1)
}

/// Parses `--fanouts a,b,…` — per-hop supporting-node counts. Sets the
/// stack depth to the list's length, so it subsumes `--layers` (which
/// keeps the uniform `n_neighbors` fanout at every hop).
fn fanouts_arg() -> Option<Vec<usize>> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--fanouts")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.split(',')
                .map(|p| {
                    p.trim()
                        .parse()
                        .expect("--fanouts takes comma-separated positive integers")
                })
                .collect()
        })
}

/// Applies the depth/fanout knobs to a model config.
fn with_stack(
    cfg: disttgl::core::ModelConfig,
    fanouts: &Option<Vec<usize>>,
    n_layers: usize,
) -> disttgl::core::ModelConfig {
    match fanouts {
        Some(f) => cfg.with_fanouts(f.clone()),
        None => cfg.with_layers(n_layers),
    }
}

fn print_layer_split(timing: &disttgl::core::TimingBreakdown) {
    let per_layer: Vec<String> = timing
        .embed_layer_secs
        .iter()
        .enumerate()
        .map(|(l, s)| format!("L{l} {:.0}ms", s * 1e3))
        .collect();
    println!(
        "               embed stack: [{}] of {:.0}ms compute",
        per_layer.join(", "),
        timing.compute_secs * 1e3
    );
    // Kernel attribution (GRU overlaps its gate matmuls, so the shares
    // do not sum to 100%).
    let pct = |s: f64| 100.0 * s / timing.compute_secs.max(1e-12);
    println!(
        "               kernels: matmul {:.0}ms ({:.0}%), GRU {:.0}ms ({:.0}%), softmax {:.0}ms ({:.0}%), gather {:.0}ms ({:.0}%)",
        timing.matmul_secs * 1e3,
        pct(timing.matmul_secs),
        timing.gru_secs * 1e3,
        pct(timing.gru_secs),
        timing.softmax_secs * 1e3,
        pct(timing.softmax_secs),
        timing.gather_secs * 1e3,
        pct(timing.gather_secs),
    );
}

fn main() {
    let fanouts = fanouts_arg();
    let n_layers = fanouts.as_ref().map(Vec::len).unwrap_or_else(layers_arg);

    // 1. A scaled-down Wikipedia analog (see Table 2 of the paper):
    //    bipartite user→page edit events with strong revisit structure.
    let dataset = generators::wikipedia(0.02, 42);
    let stats = dataset.stats();

    // 2. Model: TGN-attn with static node memory (compact widths for
    //    CPU; `ModelConfig::paper_default` gives the paper's 100-dim).
    //    `--layers N` stacks N temporal-attention layers over an
    //    N-hop frontier with the uniform fanout; `--fanouts a,b,…`
    //    sets per-hop fanouts (depth = list length). One union memory
    //    gather either way.
    let model_cfg = with_stack(
        ModelConfig::compact(dataset.edge_features.cols()),
        &fanouts,
        n_layers,
    );
    println!(
        "dataset {}: |V| = {}, |E| = {}, max(t) = {:.1e}, d_e = {}, layers = {n_layers}, fanouts = {:?}",
        stats.name,
        stats.num_nodes,
        stats.num_events,
        stats.max_t,
        stats.d_e,
        model_cfg.fanouts()
    );

    // 3. Single-GPU baseline.
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 200;
    cfg.epochs = 8;
    cfg.base_lr = 6e-3;
    cfg.eval_negs = 49;
    let single = train_single(&dataset, &model_cfg, &cfg);
    println!(
        "single GPU   : test MRR {:.4}, {:.0} events/s, {} iterations",
        single.test_metric,
        single.throughput_events_per_sec,
        single.loss_history.len()
    );
    print_layer_split(&single.timing);

    // 4. DistTGL with memory parallelism (1×1×4): four memory replicas
    //    sweeping staggered time segments, weights synced by
    //    all-reduce — the configuration the paper recommends for
    //    small-batch datasets.
    let mut cfg = TrainConfig::new(ParallelConfig::new(1, 1, 4));
    cfg.local_batch = 200;
    cfg.epochs = 8;
    cfg.base_lr = 6e-3;
    cfg.eval_negs = 49;
    let dist = train_distributed(&dataset, &model_cfg, &cfg, ClusterSpec::new(1, 4));
    println!(
        "DistTGL 1x1x4: test MRR {:.4}, {:.0} events/s, {} iterations",
        dist.test_metric,
        dist.throughput_events_per_sec,
        dist.loss_history.len()
    );
    println!(
        "               node-memory rows read {} / written {} (all via memory daemons), {:.1} MiB payload moved",
        dist.daemon_rows_read,
        dist.daemon_rows_written,
        dist.daemon_payload_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "               speculative overlap: {} spec reads ({} rows gathered off-turn), {} delta turns repaired {} stale rows ({:.1}% of speculated)",
        dist.daemon_spec_reads,
        dist.daemon_spec_rows,
        dist.daemon_delta_reads,
        dist.daemon_delta_rows,
        100.0 * dist.daemon_delta_rows as f64 / dist.daemon_spec_rows.max(1) as f64
    );
    println!(
        "               weight sync: {} bytes, modeled wire time {:.3} ms",
        dist.comm_bytes,
        dist.comm_modeled_nanos as f64 / 1e6
    );
    // Bounded-staleness mode (opt-in, ROADMAP's MSPipe item): rows
    // within k pending writes skip the Acquire-slot repair; k=0 would
    // be bit-identical. Demonstrated at 1×2×1 — memory parallelism is
    // the topology where speculation windows actually see intervening
    // writers, so the skipped/paid split is non-trivial.
    let mut stale_cfg = TrainConfig::new(ParallelConfig::new(1, 2, 1));
    stale_cfg.local_batch = 200;
    stale_cfg.epochs = 8;
    stale_cfg.base_lr = 6e-3;
    stale_cfg.eval_negs = 49;
    let exact = train_distributed(&dataset, &model_cfg, &stale_cfg, ClusterSpec::new(1, 2));
    let stale_cfg = stale_cfg.staleness_bound(4);
    let stale = train_distributed(&dataset, &model_cfg, &stale_cfg, ClusterSpec::new(1, 2));
    println!(
        "               bounded staleness (1x2x1, k=4): test MRR {:.4} (exact {:.4}), {} repairs skipped / {} paid, mean version lag {:.2}, max {}",
        stale.test_metric,
        exact.test_metric,
        stale.daemon_stale_rows_admitted,
        stale.daemon_delta_rows,
        stale.daemon_stale_lag_sum as f64 / stale.daemon_stale_rows_admitted.max(1) as f64,
        stale.daemon_stale_lag_max
    );
    print_layer_split(&dist.timing);

    // 5. The other task: dynamic edge classification on a GDELT-like
    //    stream, same stack depth.
    let gdelt = generators::gdelt(5e-5, 7);
    let class_cfg = with_stack(
        ModelConfig::compact(gdelt.edge_features.cols()).with_classes(56),
        &fanouts,
        n_layers,
    );
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 200;
    cfg.epochs = 4;
    cfg.base_lr = 6e-3;
    let class = train_single(&gdelt, &class_cfg, &cfg);
    println!(
        "edge class   : test F1-micro {:.4}, {:.0} events/s ({} layers)",
        class.test_metric, class.throughput_events_per_sec, n_layers
    );
    print_layer_split(&class.timing);
}
