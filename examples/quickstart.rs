//! Quickstart: train a memory-based TGNN on a synthetic Wikipedia-like
//! temporal graph with a single simulated GPU, then with DistTGL's
//! memory parallelism on 4 simulated GPUs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use disttgl::cluster::ClusterSpec;
use disttgl::core::{train_distributed, train_single, ModelConfig, ParallelConfig, TrainConfig};
use disttgl::data::generators;

fn main() {
    // 1. A scaled-down Wikipedia analog (see Table 2 of the paper):
    //    bipartite user→page edit events with strong revisit structure.
    let dataset = generators::wikipedia(0.02, 42);
    let stats = dataset.stats();
    println!(
        "dataset {}: |V| = {}, |E| = {}, max(t) = {:.1e}, d_e = {}",
        stats.name, stats.num_nodes, stats.num_events, stats.max_t, stats.d_e
    );

    // 2. Model: TGN-attn with static node memory (compact widths for
    //    CPU; `ModelConfig::paper_default` gives the paper's 100-dim).
    let model_cfg = ModelConfig::compact(dataset.edge_features.cols());

    // 3. Single-GPU baseline.
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = 200;
    cfg.epochs = 8;
    cfg.base_lr = 6e-3;
    cfg.eval_negs = 49;
    let single = train_single(&dataset, &model_cfg, &cfg);
    println!(
        "single GPU   : test MRR {:.4}, {:.0} events/s, {} iterations",
        single.test_metric,
        single.throughput_events_per_sec,
        single.loss_history.len()
    );

    // 4. DistTGL with memory parallelism (1×1×4): four memory replicas
    //    sweeping staggered time segments, weights synced by
    //    all-reduce — the configuration the paper recommends for
    //    small-batch datasets.
    let mut cfg = TrainConfig::new(ParallelConfig::new(1, 1, 4));
    cfg.local_batch = 200;
    cfg.epochs = 8;
    cfg.base_lr = 6e-3;
    cfg.eval_negs = 49;
    let dist = train_distributed(&dataset, &model_cfg, &cfg, ClusterSpec::new(1, 4));
    println!(
        "DistTGL 1x1x4: test MRR {:.4}, {:.0} events/s, {} iterations",
        dist.test_metric,
        dist.throughput_events_per_sec,
        dist.loss_history.len()
    );
    println!(
        "               node-memory rows read {} / written {} (all via memory daemons)",
        dist.daemon_rows_read, dist.daemon_rows_written
    );
    println!(
        "               speculative overlap: {} spec reads ({} rows gathered off-turn), {} delta turns repaired {} stale rows ({:.1}% of speculated)",
        dist.daemon_spec_reads,
        dist.daemon_spec_rows,
        dist.daemon_delta_reads,
        dist.daemon_delta_rows,
        100.0 * dist.daemon_delta_rows as f64 / dist.daemon_spec_rows.max(1) as f64
    );
    println!(
        "               weight sync: {} bytes, modeled wire time {:.3} ms",
        dist.comm_bytes,
        dist.comm_modeled_nanos as f64 / 1e6
    );
}
