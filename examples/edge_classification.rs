//! Dynamic edge classification on a GDELT-like event stream — the
//! paper's large-dataset task (56-class, 6-label, F1-micro), trained
//! with mini-batch parallelism, the strategy the planner picks when
//! the tolerable batch size exceeds one GPU's capacity.
//!
//! ```sh
//! cargo run --release --example edge_classification
//! ```

use disttgl::cluster::ClusterSpec;
use disttgl::core::{train_distributed, ModelConfig, ParallelConfig, TrainConfig};
use disttgl::data::generators;

fn main() {
    // GDELT analog at 1/20000 scale (the real one has 191M events).
    let dataset = generators::gdelt(5e-5, 11);
    println!("== dataset: {} ==", dataset.name);
    println!("{:?}", dataset.stats());
    println!(
        "classes: {}, labels per event: 6 (community-pair signatures)",
        dataset.num_classes()
    );

    let model_cfg =
        ModelConfig::compact(dataset.edge_features.cols()).with_classes(dataset.num_classes());

    // Mini-batch parallelism 4×1×1: one global batch split over 4
    // simulated GPUs, shared memory replica (Fig 11's configuration
    // family).
    let parallel = ParallelConfig::new(4, 1, 1);
    let mut cfg = TrainConfig::new(parallel);
    cfg.local_batch = 128;
    cfg.epochs = 4;
    cfg.base_lr = 4e-3;
    cfg.eval_every_epoch = true;

    let result = train_distributed(&dataset, &model_cfg, &cfg, ClusterSpec::new(1, 4));
    println!("\nconvergence (validation F1-micro per sweep):");
    for p in &result.convergence {
        println!(
            "  iter {:>6}  wall {:>7.2}s  F1 {:.4}",
            p.iteration, p.wall_secs, p.metric
        );
    }
    println!("\ntest F1-micro {:.4}", result.test_metric);
    println!(
        "throughput {:.0} events/s",
        result.throughput_events_per_sec
    );
}
